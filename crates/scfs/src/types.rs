//! Core SCFS data types: paths, metadata tuples, chunk maps, open flags and
//! handles.

use cloud_store::types::{AccountId, Acl};
use depsky::wire::{DecodeError, Reader, Writer};
use scfs_crypto::{sha256, ContentHash};
use sim_core::time::SimInstant;

/// Default chunk size of the chunked data path (1 MiB), overridable through
/// [`crate::config::ScfsConfig::chunk_size`].
pub const DEFAULT_CHUNK_SIZE: usize = 1 << 20;

/// The ordered list of content-addressed chunks making up one file version.
///
/// The chunked data path stores a file as fixed-size chunks, each addressed
/// by the SHA-256 of its contents, plus this small manifest. The consistency
/// anchor keeps exactly one hash per version — the [`ChunkMap::root_hash`],
/// the SHA-256 of the encoded manifest — so the coordination-service
/// protocol is unchanged while the storage service gains chunk-level dedup
/// (identical chunks are shared across versions) and incremental transfer
/// (only dirty chunks move on close, only missing chunks on read).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkMap {
    file_len: u64,
    chunk_size: u32,
    chunks: Vec<ContentHash>,
}

impl ChunkMap {
    /// Builds the chunk map of `data` split into `chunk_size`-byte chunks
    /// (the final chunk may be shorter). An empty file has zero chunks.
    pub fn build(data: &[u8], chunk_size: usize) -> Self {
        assert!(chunk_size > 0, "chunk size must be positive");
        ChunkMap {
            file_len: data.len() as u64,
            chunk_size: chunk_size as u32,
            chunks: data.chunks(chunk_size).map(sha256).collect(),
        }
    }

    /// The map of an empty file.
    pub fn empty(chunk_size: usize) -> Self {
        ChunkMap::build(&[], chunk_size)
    }

    /// Total file length in bytes.
    pub fn file_len(&self) -> u64 {
        self.file_len
    }

    /// The nominal chunk size this map was built with.
    pub fn chunk_size(&self) -> usize {
        self.chunk_size as usize
    }

    /// The per-chunk content hashes, in file order.
    pub fn chunks(&self) -> &[ContentHash] {
        &self.chunks
    }

    /// Number of chunks.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Byte range of chunk `index` within the file.
    pub fn byte_range(&self, index: usize) -> std::ops::Range<usize> {
        let start = index * self.chunk_size as usize;
        let end = (start + self.chunk_size as usize).min(self.file_len as usize);
        start..end
    }

    /// Length in bytes of chunk `index` (the final chunk may be short).
    pub fn chunk_len(&self, index: usize) -> usize {
        self.byte_range(index).len()
    }

    /// Indices of the chunks overlapping the byte range `[offset,
    /// offset + len)`, clamped to the end of the file. This is the offset
    /// math behind lazy byte-range reads: a `read(offset, len)` only has to
    /// materialize exactly these chunks.
    pub fn chunks_for_range(&self, offset: u64, len: usize) -> std::ops::Range<usize> {
        let end = offset.saturating_add(len as u64).min(self.file_len);
        if offset >= end {
            return 0..0;
        }
        let chunk = self.chunk_size as u64;
        let first = (offset / chunk) as usize;
        let last = end.div_ceil(chunk) as usize;
        first..last
    }

    /// The single hash the consistency anchor stores for this version: the
    /// SHA-256 of the encoded manifest.
    pub fn root_hash(&self) -> ContentHash {
        sha256(&self.encode())
    }

    /// The distinct chunk hashes of this version — the set of references a
    /// version holds in the global chunk store (a chunk repeated within the
    /// file still counts as one reference).
    pub fn unique_chunks(&self) -> std::collections::HashSet<ContentHash> {
        self.chunks.iter().copied().collect()
    }

    /// Indices of the chunks of this map that `prev` does not already hold —
    /// the chunks a writer must upload when the previous version is `prev`.
    pub fn dirty_chunks(&self, prev: Option<&ChunkMap>) -> Vec<usize> {
        let existing: std::collections::HashSet<&ContentHash> =
            prev.map(|p| p.chunks.iter().collect()).unwrap_or_default();
        self.chunks
            .iter()
            .enumerate()
            .filter(|(_, h)| !existing.contains(h))
            .map(|(i, _)| i)
            .collect()
    }

    /// Serializes the manifest (what the storage service stores under the
    /// root hash).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u64(self.file_len);
        w.put_u64(self.chunk_size as u64);
        w.put_u64(self.chunks.len() as u64);
        for hash in &self.chunks {
            w.put_bytes(hash);
        }
        w.finish()
    }

    /// Deserializes a manifest.
    pub fn decode(buf: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(buf);
        let file_len = r.get_u64()?;
        let chunk_size = r.get_u64()?;
        if chunk_size == 0 || chunk_size > u32::MAX as u64 {
            return Err(DecodeError {
                reason: format!("invalid chunk size {chunk_size}"),
            });
        }
        let count = r.get_u64()? as usize;
        let expected = file_len.div_ceil(chunk_size) as usize;
        if count != expected {
            return Err(DecodeError {
                reason: format!("chunk count {count} does not cover file of {file_len} bytes"),
            });
        }
        let mut chunks = Vec::with_capacity(count);
        for _ in 0..count {
            let bytes = r.get_bytes()?;
            if bytes.len() != 32 {
                return Err(DecodeError {
                    reason: "chunk hash must be 32 bytes".into(),
                });
            }
            let mut h = [0u8; 32];
            h.copy_from_slice(&bytes);
            chunks.push(h);
        }
        Ok(ChunkMap {
            file_len,
            chunk_size: chunk_size as u32,
            chunks,
        })
    }
}

/// Type of a file-system object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileType {
    /// A regular file.
    File,
    /// A directory.
    Directory,
}

/// The metadata tuple SCFS keeps for every file-system object
/// (paper §2.5.1): name, type, parent, POSIX-ish attributes, the opaque
/// identifier of the object in the storage service, and the hash of the
/// current version — the last two being exactly the `(id, hash)` pair stored
/// in the consistency anchor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileMetadata {
    /// Absolute path of the object (doubles as its name + parent).
    pub path: String,
    /// File or directory.
    pub file_type: FileType,
    /// Size of the current version in bytes (0 for directories).
    pub size: u64,
    /// Owner of the object.
    pub owner: AccountId,
    /// Access control list (empty = private).
    pub acl: Acl,
    /// Creation instant.
    pub created_at: SimInstant,
    /// Last-modification instant.
    pub modified_at: SimInstant,
    /// Opaque identifier of the file's data in the storage service
    /// (the `id` of the consistency-anchor algorithm).
    pub storage_id: String,
    /// SHA-256 of the current version (the `hash` of the consistency anchor);
    /// `None` until the first version is written.
    pub version_hash: Option<ContentHash>,
    /// Number of versions written so far.
    pub version_count: u64,
    /// Whether the user deleted the object (kept as a tombstone until the
    /// garbage collector reclaims it, paper §2.5.3).
    pub deleted: bool,
}

impl FileMetadata {
    /// Creates metadata for a new, empty file.
    pub fn new_file(path: &str, owner: AccountId, storage_id: String, now: SimInstant) -> Self {
        FileMetadata {
            path: path.to_string(),
            file_type: FileType::File,
            size: 0,
            owner,
            acl: Acl::private(),
            created_at: now,
            modified_at: now,
            storage_id,
            version_hash: None,
            version_count: 0,
            deleted: false,
        }
    }

    /// Creates metadata for a new directory.
    pub fn new_directory(path: &str, owner: AccountId, now: SimInstant) -> Self {
        FileMetadata {
            path: path.to_string(),
            file_type: FileType::Directory,
            size: 0,
            owner,
            acl: Acl::private(),
            created_at: now,
            modified_at: now,
            storage_id: String::new(),
            version_hash: None,
            version_count: 0,
            deleted: false,
        }
    }

    /// Whether the object is shared with at least one other user.
    pub fn is_shared(&self) -> bool {
        !self.acl.is_empty()
    }

    /// Serializes the metadata tuple (stored in the coordination service or
    /// in a private name space; ~1 KB per the paper's capacity analysis).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_str(&self.path);
        w.put_u8(match self.file_type {
            FileType::File => 0,
            FileType::Directory => 1,
        });
        w.put_u64(self.size);
        w.put_str(self.owner.as_str());
        w.put_u64(self.acl.len() as u64);
        for (account, perm) in self.acl.grants() {
            w.put_str(account.as_str());
            w.put_u8(match perm {
                cloud_store::types::Permission::Read => 0,
                cloud_store::types::Permission::Write => 1,
            });
        }
        w.put_u64(self.created_at.as_nanos());
        w.put_u64(self.modified_at.as_nanos());
        w.put_str(&self.storage_id);
        match &self.version_hash {
            Some(h) => {
                w.put_u8(1);
                w.put_bytes(h);
            }
            None => {
                w.put_u8(0);
            }
        }
        w.put_u64(self.version_count);
        w.put_u8(u8::from(self.deleted));
        w.finish()
    }

    /// Deserializes a metadata tuple.
    pub fn decode(buf: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(buf);
        let path = r.get_str()?;
        let file_type = match r.get_u8()? {
            0 => FileType::File,
            _ => FileType::Directory,
        };
        let size = r.get_u64()?;
        let owner = AccountId::new(r.get_str()?);
        let grant_count = r.get_u64()? as usize;
        let mut acl = Acl::private();
        for _ in 0..grant_count {
            let account = AccountId::new(r.get_str()?);
            let perm = match r.get_u8()? {
                0 => cloud_store::types::Permission::Read,
                _ => cloud_store::types::Permission::Write,
            };
            acl.grant(account, perm);
        }
        let created_at = SimInstant::from_nanos(r.get_u64()?);
        let modified_at = SimInstant::from_nanos(r.get_u64()?);
        let storage_id = r.get_str()?;
        let version_hash = if r.get_u8()? == 1 {
            let bytes = r.get_bytes()?;
            if bytes.len() != 32 {
                return Err(DecodeError {
                    reason: "version hash must be 32 bytes".into(),
                });
            }
            let mut h = [0u8; 32];
            h.copy_from_slice(&bytes);
            Some(h)
        } else {
            None
        };
        let version_count = r.get_u64()?;
        let deleted = r.get_u8()? != 0;
        Ok(FileMetadata {
            path,
            file_type,
            size,
            owner,
            acl,
            created_at,
            modified_at,
            storage_id,
            version_hash,
            version_count,
            deleted,
        })
    }
}

/// Flags passed to `open`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpenFlags {
    /// Open for reading.
    pub read: bool,
    /// Open for writing (requires the write lock in shared modes).
    pub write: bool,
    /// Create the file if it does not exist.
    pub create: bool,
    /// Truncate the file to zero length on open.
    pub truncate: bool,
}

impl OpenFlags {
    /// Read-only open.
    pub fn read_only() -> Self {
        OpenFlags {
            read: true,
            ..OpenFlags::default()
        }
    }

    /// Read-write open (no create).
    pub fn read_write() -> Self {
        OpenFlags {
            read: true,
            write: true,
            ..OpenFlags::default()
        }
    }

    /// Create (or open) for writing.
    pub fn create() -> Self {
        OpenFlags {
            read: true,
            write: true,
            create: true,
            ..OpenFlags::default()
        }
    }

    /// Create and truncate for writing.
    pub fn create_truncate() -> Self {
        OpenFlags {
            read: true,
            write: true,
            create: true,
            truncate: true,
        }
    }
}

/// An open-file handle returned by `open`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileHandle(pub u64);

/// Normalizes a path: must be absolute, collapses duplicate slashes and
/// strips a trailing slash (except for the root).
pub fn normalize_path(path: &str) -> Result<String, crate::error::ScfsError> {
    if !path.starts_with('/') {
        return Err(crate::error::ScfsError::invalid(format!(
            "path must be absolute: {path}"
        )));
    }
    let mut parts: Vec<&str> = Vec::new();
    for part in path.split('/') {
        match part {
            "" | "." => {}
            ".." => {
                parts.pop();
            }
            p => parts.push(p),
        }
    }
    if parts.is_empty() {
        Ok("/".to_string())
    } else {
        Ok(format!("/{}", parts.join("/")))
    }
}

/// Returns the parent directory of a normalized path (`/` for top-level entries).
pub fn parent_of(path: &str) -> String {
    match path.rfind('/') {
        Some(0) | None => "/".to_string(),
        Some(idx) => path[..idx].to_string(),
    }
}

/// Returns the final component of a normalized path.
pub fn basename_of(path: &str) -> &str {
    path.rsplit('/').next().unwrap_or(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloud_store::types::Permission;
    use scfs_crypto::sha256;

    #[test]
    fn metadata_encode_decode_round_trip() {
        let mut md = FileMetadata::new_file(
            "/docs/report.odt",
            "alice".into(),
            "file-42".into(),
            SimInstant::from_secs(100),
        );
        md.size = 1234;
        md.version_hash = Some(sha256(b"contents"));
        md.version_count = 3;
        md.acl.grant("bob".into(), Permission::Read);
        md.deleted = false;
        let decoded = FileMetadata::decode(&md.encode()).unwrap();
        assert_eq!(decoded, md);
    }

    #[test]
    fn directory_metadata_round_trips() {
        let md = FileMetadata::new_directory("/docs", "alice".into(), SimInstant::from_secs(5));
        let decoded = FileMetadata::decode(&md.encode()).unwrap();
        assert_eq!(decoded, md);
        assert_eq!(decoded.file_type, FileType::Directory);
        assert!(!decoded.is_shared());
    }

    #[test]
    fn metadata_tuple_is_about_1kb_with_long_names() {
        // The paper assumes ~1 KB tuples with 100-byte file names.
        let long_name = format!("/{}", "d".repeat(100));
        let md = FileMetadata::new_file(&long_name, "alice".into(), "id".into(), SimInstant::EPOCH);
        let encoded = md.encode();
        assert!(encoded.len() < 1024, "tuple was {} bytes", encoded.len());
    }

    #[test]
    fn shared_flag_follows_acl() {
        let mut md = FileMetadata::new_file("/f", "alice".into(), "id".into(), SimInstant::EPOCH);
        assert!(!md.is_shared());
        md.acl.grant("bob".into(), Permission::Write);
        assert!(md.is_shared());
    }

    #[test]
    fn open_flag_constructors() {
        assert!(OpenFlags::read_only().read);
        assert!(!OpenFlags::read_only().write);
        assert!(OpenFlags::create().create);
        assert!(OpenFlags::create_truncate().truncate);
        assert!(OpenFlags::read_write().write);
    }

    #[test]
    fn path_normalization() {
        assert_eq!(normalize_path("/a//b/").unwrap(), "/a/b");
        assert_eq!(normalize_path("/").unwrap(), "/");
        assert_eq!(normalize_path("/a/./b/../c").unwrap(), "/a/c");
        assert!(normalize_path("relative/path").is_err());
    }

    #[test]
    fn parent_and_basename() {
        assert_eq!(parent_of("/a/b/c"), "/a/b");
        assert_eq!(parent_of("/a"), "/");
        assert_eq!(basename_of("/a/b/c"), "c");
        assert_eq!(basename_of("/x"), "x");
    }

    #[test]
    fn corrupted_metadata_fails_to_decode() {
        let md = FileMetadata::new_file("/f", "a".into(), "id".into(), SimInstant::EPOCH);
        let mut bytes = md.encode();
        bytes.truncate(bytes.len() / 2);
        assert!(FileMetadata::decode(&bytes).is_err());
    }

    #[test]
    fn chunk_map_splits_and_round_trips() {
        let data = vec![3u8; 2500];
        let map = ChunkMap::build(&data, 1000);
        assert_eq!(map.file_len(), 2500);
        assert_eq!(map.chunk_count(), 3);
        assert_eq!(map.byte_range(0), 0..1000);
        assert_eq!(map.byte_range(2), 2000..2500);
        let decoded = ChunkMap::decode(&map.encode()).unwrap();
        assert_eq!(decoded, map);
        assert_eq!(decoded.root_hash(), map.root_hash());
    }

    #[test]
    fn chunk_map_edge_sizes() {
        // Empty file: no chunks, but still a well-defined root hash.
        let empty = ChunkMap::empty(1000);
        assert_eq!(empty.chunk_count(), 0);
        assert_eq!(ChunkMap::decode(&empty.encode()).unwrap(), empty);
        // Exactly one chunk, one byte less, one byte more.
        assert_eq!(ChunkMap::build(&vec![0; 1000], 1000).chunk_count(), 1);
        assert_eq!(ChunkMap::build(&vec![0; 999], 1000).chunk_count(), 1);
        let plus = ChunkMap::build(&vec![0; 1001], 1000);
        assert_eq!(plus.chunk_count(), 2);
        assert_eq!(plus.byte_range(1), 1000..1001);
    }

    #[test]
    fn chunks_for_range_maps_bytes_to_chunk_indices() {
        let map = ChunkMap::build(&vec![0u8; 2500], 1000);
        assert_eq!(map.chunks_for_range(0, 1), 0..1);
        assert_eq!(map.chunks_for_range(999, 2), 0..2);
        assert_eq!(map.chunks_for_range(1000, 1000), 1..2);
        assert_eq!(map.chunks_for_range(0, 2500), 0..3);
        // Clamped to EOF, empty beyond it, zero-length is empty.
        assert_eq!(map.chunks_for_range(2400, 5000), 2..3);
        assert_eq!(map.chunks_for_range(2500, 10), 0..0);
        assert_eq!(map.chunks_for_range(500, 0), 0..0);
        // Huge lengths must not overflow.
        assert_eq!(map.chunks_for_range(1, usize::MAX), 0..3);
        assert_eq!(map.chunk_len(2), 500);
    }

    #[test]
    fn identical_chunks_share_hashes() {
        let data = vec![7u8; 3000];
        let map = ChunkMap::build(&data, 1000);
        assert_eq!(map.chunks()[0], map.chunks()[1]);
        assert_eq!(map.chunks()[1], map.chunks()[2]);
    }

    #[test]
    fn dirty_chunks_are_only_the_changed_ones() {
        let mut data = vec![1u8; 4000];
        let v1 = ChunkMap::build(&data, 1000);
        // With no previous version every chunk is dirty (within-version
        // dedup happens at upload time in the backend).
        assert_eq!(v1.dirty_chunks(None).len(), 4);
        data[2500] = 9;
        let v2 = ChunkMap::build(&data, 1000);
        assert_eq!(v2.dirty_chunks(Some(&v1)), vec![2]);
        // An append adds exactly one dirty chunk.
        data.extend_from_slice(&[5u8; 10]);
        let v3 = ChunkMap::build(&data, 1000);
        assert_eq!(v3.dirty_chunks(Some(&v2)), vec![4]);
        // Same content: nothing dirty.
        let v4 = ChunkMap::build(&data, 1000);
        assert!(v4.dirty_chunks(Some(&v3)).is_empty());
        assert_eq!(v4.root_hash(), v3.root_hash());
    }

    #[test]
    fn chunk_map_rejects_inconsistent_encodings() {
        let map = ChunkMap::build(&[0u8; 100], 50);
        let mut bytes = map.encode();
        bytes.truncate(bytes.len() / 2);
        assert!(ChunkMap::decode(&bytes).is_err());
        // A manifest whose chunk count cannot cover the file is rejected.
        let mut w = Writer::new();
        w.put_u64(100).put_u64(50).put_u64(1);
        w.put_bytes(&[0u8; 32]);
        assert!(ChunkMap::decode(&w.finish()).is_err());
    }
}
