//! Core SCFS data types: paths, metadata tuples, open flags and handles.

use cloud_store::types::{AccountId, Acl};
use depsky::wire::{DecodeError, Reader, Writer};
use scfs_crypto::ContentHash;
use sim_core::time::SimInstant;

/// Type of a file-system object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileType {
    /// A regular file.
    File,
    /// A directory.
    Directory,
}

/// The metadata tuple SCFS keeps for every file-system object
/// (paper §2.5.1): name, type, parent, POSIX-ish attributes, the opaque
/// identifier of the object in the storage service, and the hash of the
/// current version — the last two being exactly the `(id, hash)` pair stored
/// in the consistency anchor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileMetadata {
    /// Absolute path of the object (doubles as its name + parent).
    pub path: String,
    /// File or directory.
    pub file_type: FileType,
    /// Size of the current version in bytes (0 for directories).
    pub size: u64,
    /// Owner of the object.
    pub owner: AccountId,
    /// Access control list (empty = private).
    pub acl: Acl,
    /// Creation instant.
    pub created_at: SimInstant,
    /// Last-modification instant.
    pub modified_at: SimInstant,
    /// Opaque identifier of the file's data in the storage service
    /// (the `id` of the consistency-anchor algorithm).
    pub storage_id: String,
    /// SHA-256 of the current version (the `hash` of the consistency anchor);
    /// `None` until the first version is written.
    pub version_hash: Option<ContentHash>,
    /// Number of versions written so far.
    pub version_count: u64,
    /// Whether the user deleted the object (kept as a tombstone until the
    /// garbage collector reclaims it, paper §2.5.3).
    pub deleted: bool,
}

impl FileMetadata {
    /// Creates metadata for a new, empty file.
    pub fn new_file(path: &str, owner: AccountId, storage_id: String, now: SimInstant) -> Self {
        FileMetadata {
            path: path.to_string(),
            file_type: FileType::File,
            size: 0,
            owner,
            acl: Acl::private(),
            created_at: now,
            modified_at: now,
            storage_id,
            version_hash: None,
            version_count: 0,
            deleted: false,
        }
    }

    /// Creates metadata for a new directory.
    pub fn new_directory(path: &str, owner: AccountId, now: SimInstant) -> Self {
        FileMetadata {
            path: path.to_string(),
            file_type: FileType::Directory,
            size: 0,
            owner,
            acl: Acl::private(),
            created_at: now,
            modified_at: now,
            storage_id: String::new(),
            version_hash: None,
            version_count: 0,
            deleted: false,
        }
    }

    /// Whether the object is shared with at least one other user.
    pub fn is_shared(&self) -> bool {
        !self.acl.is_empty()
    }

    /// Serializes the metadata tuple (stored in the coordination service or
    /// in a private name space; ~1 KB per the paper's capacity analysis).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_str(&self.path);
        w.put_u8(match self.file_type {
            FileType::File => 0,
            FileType::Directory => 1,
        });
        w.put_u64(self.size);
        w.put_str(self.owner.as_str());
        w.put_u64(self.acl.len() as u64);
        for (account, perm) in self.acl.grants() {
            w.put_str(account.as_str());
            w.put_u8(match perm {
                cloud_store::types::Permission::Read => 0,
                cloud_store::types::Permission::Write => 1,
            });
        }
        w.put_u64(self.created_at.as_nanos());
        w.put_u64(self.modified_at.as_nanos());
        w.put_str(&self.storage_id);
        match &self.version_hash {
            Some(h) => {
                w.put_u8(1);
                w.put_bytes(h);
            }
            None => {
                w.put_u8(0);
            }
        }
        w.put_u64(self.version_count);
        w.put_u8(u8::from(self.deleted));
        w.finish()
    }

    /// Deserializes a metadata tuple.
    pub fn decode(buf: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(buf);
        let path = r.get_str()?;
        let file_type = match r.get_u8()? {
            0 => FileType::File,
            _ => FileType::Directory,
        };
        let size = r.get_u64()?;
        let owner = AccountId::new(r.get_str()?);
        let grant_count = r.get_u64()? as usize;
        let mut acl = Acl::private();
        for _ in 0..grant_count {
            let account = AccountId::new(r.get_str()?);
            let perm = match r.get_u8()? {
                0 => cloud_store::types::Permission::Read,
                _ => cloud_store::types::Permission::Write,
            };
            acl.grant(account, perm);
        }
        let created_at = SimInstant::from_nanos(r.get_u64()?);
        let modified_at = SimInstant::from_nanos(r.get_u64()?);
        let storage_id = r.get_str()?;
        let version_hash = if r.get_u8()? == 1 {
            let bytes = r.get_bytes()?;
            if bytes.len() != 32 {
                return Err(DecodeError {
                    reason: "version hash must be 32 bytes".into(),
                });
            }
            let mut h = [0u8; 32];
            h.copy_from_slice(&bytes);
            Some(h)
        } else {
            None
        };
        let version_count = r.get_u64()?;
        let deleted = r.get_u8()? != 0;
        Ok(FileMetadata {
            path,
            file_type,
            size,
            owner,
            acl,
            created_at,
            modified_at,
            storage_id,
            version_hash,
            version_count,
            deleted,
        })
    }
}

/// Flags passed to `open`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpenFlags {
    /// Open for reading.
    pub read: bool,
    /// Open for writing (requires the write lock in shared modes).
    pub write: bool,
    /// Create the file if it does not exist.
    pub create: bool,
    /// Truncate the file to zero length on open.
    pub truncate: bool,
}

impl OpenFlags {
    /// Read-only open.
    pub fn read_only() -> Self {
        OpenFlags {
            read: true,
            ..OpenFlags::default()
        }
    }

    /// Read-write open (no create).
    pub fn read_write() -> Self {
        OpenFlags {
            read: true,
            write: true,
            ..OpenFlags::default()
        }
    }

    /// Create (or open) for writing.
    pub fn create() -> Self {
        OpenFlags {
            read: true,
            write: true,
            create: true,
            ..OpenFlags::default()
        }
    }

    /// Create and truncate for writing.
    pub fn create_truncate() -> Self {
        OpenFlags {
            read: true,
            write: true,
            create: true,
            truncate: true,
        }
    }
}

/// An open-file handle returned by `open`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileHandle(pub u64);

/// Normalizes a path: must be absolute, collapses duplicate slashes and
/// strips a trailing slash (except for the root).
pub fn normalize_path(path: &str) -> Result<String, crate::error::ScfsError> {
    if !path.starts_with('/') {
        return Err(crate::error::ScfsError::invalid(format!(
            "path must be absolute: {path}"
        )));
    }
    let mut parts: Vec<&str> = Vec::new();
    for part in path.split('/') {
        match part {
            "" | "." => {}
            ".." => {
                parts.pop();
            }
            p => parts.push(p),
        }
    }
    if parts.is_empty() {
        Ok("/".to_string())
    } else {
        Ok(format!("/{}", parts.join("/")))
    }
}

/// Returns the parent directory of a normalized path (`/` for top-level entries).
pub fn parent_of(path: &str) -> String {
    match path.rfind('/') {
        Some(0) | None => "/".to_string(),
        Some(idx) => path[..idx].to_string(),
    }
}

/// Returns the final component of a normalized path.
pub fn basename_of(path: &str) -> &str {
    path.rsplit('/').next().unwrap_or(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloud_store::types::Permission;
    use scfs_crypto::sha256;

    #[test]
    fn metadata_encode_decode_round_trip() {
        let mut md = FileMetadata::new_file(
            "/docs/report.odt",
            "alice".into(),
            "file-42".into(),
            SimInstant::from_secs(100),
        );
        md.size = 1234;
        md.version_hash = Some(sha256(b"contents"));
        md.version_count = 3;
        md.acl.grant("bob".into(), Permission::Read);
        md.deleted = false;
        let decoded = FileMetadata::decode(&md.encode()).unwrap();
        assert_eq!(decoded, md);
    }

    #[test]
    fn directory_metadata_round_trips() {
        let md = FileMetadata::new_directory("/docs", "alice".into(), SimInstant::from_secs(5));
        let decoded = FileMetadata::decode(&md.encode()).unwrap();
        assert_eq!(decoded, md);
        assert_eq!(decoded.file_type, FileType::Directory);
        assert!(!decoded.is_shared());
    }

    #[test]
    fn metadata_tuple_is_about_1kb_with_long_names() {
        // The paper assumes ~1 KB tuples with 100-byte file names.
        let long_name = format!("/{}", "d".repeat(100));
        let md = FileMetadata::new_file(&long_name, "alice".into(), "id".into(), SimInstant::EPOCH);
        let encoded = md.encode();
        assert!(encoded.len() < 1024, "tuple was {} bytes", encoded.len());
    }

    #[test]
    fn shared_flag_follows_acl() {
        let mut md =
            FileMetadata::new_file("/f", "alice".into(), "id".into(), SimInstant::EPOCH);
        assert!(!md.is_shared());
        md.acl.grant("bob".into(), Permission::Write);
        assert!(md.is_shared());
    }

    #[test]
    fn open_flag_constructors() {
        assert!(OpenFlags::read_only().read);
        assert!(!OpenFlags::read_only().write);
        assert!(OpenFlags::create().create);
        assert!(OpenFlags::create_truncate().truncate);
        assert!(OpenFlags::read_write().write);
    }

    #[test]
    fn path_normalization() {
        assert_eq!(normalize_path("/a//b/").unwrap(), "/a/b");
        assert_eq!(normalize_path("/").unwrap(), "/");
        assert_eq!(normalize_path("/a/./b/../c").unwrap(), "/a/c");
        assert!(normalize_path("relative/path").is_err());
    }

    #[test]
    fn parent_and_basename() {
        assert_eq!(parent_of("/a/b/c"), "/a/b");
        assert_eq!(parent_of("/a"), "/");
        assert_eq!(basename_of("/a/b/c"), "c");
        assert_eq!(basename_of("/x"), "x");
    }

    #[test]
    fn corrupted_metadata_fails_to_decode() {
        let md = FileMetadata::new_file("/f", "a".into(), "id".into(), SimInstant::EPOCH);
        let mut bytes = md.encode();
        bytes.truncate(bytes.len() / 2);
        assert!(FileMetadata::decode(&bytes).is_err());
    }
}
