//! Core SCFS data types: paths, metadata tuples, chunk maps, open flags and
//! handles.

use cloud_store::types::{AccountId, Acl};
use depsky::wire::{DecodeError, Reader, Writer};
use scfs_crypto::{sha256, ContentHash};
use sim_core::time::SimInstant;

/// Default chunk size of the chunked data path (1 MiB), overridable through
/// [`crate::config::ScfsConfig::chunk_size`].
pub const DEFAULT_CHUNK_SIZE: usize = 1 << 20;

/// Upper bound on the logical length of a file (1 TiB).
///
/// The write path refuses to grow a file past this bound (a huge-offset
/// `write` returns an error instead of wrapping the end-offset arithmetic),
/// and [`ChunkMap::decode`] rejects manifests claiming a longer file — a
/// crafted `file_len` must not translate into an absurd buffer allocation.
pub const MAX_FILE_LEN: u64 = 1 << 40;

/// Minimum encoded size of one chunk record in a v1 manifest: the 8-byte
/// length prefix plus the 32-byte hash. Bounds the chunk count a decoder
/// will believe before it has read a single hash.
const V1_CHUNK_RECORD_LEN: usize = 8 + 32;

/// Minimum encoded size of one chunk record in a v2 manifest: the 8-byte
/// extent length plus the length-prefixed hash.
const V2_CHUNK_RECORD_LEN: usize = 8 + V1_CHUNK_RECORD_LEN;

/// Leading `u64` marking a version-2 (content-defined) manifest. A v1
/// manifest starts with its `file_len`, which [`ChunkMap::decode`] bounds by
/// [`MAX_FILE_LEN`] — so the all-ones marker can never be confused with a
/// valid v1 length.
const MANIFEST_V2_MAGIC: u64 = u64::MAX;

/// Gear table of the content-defined chunker: 256 pseudo-random 64-bit
/// constants, one per byte value, generated from a fixed SplitMix64 stream
/// so every agent derives identical chunk boundaries (and therefore
/// identical chunk hashes — the whole point of content-defined dedup).
const fn gear_table() -> [u64; 256] {
    let mut table = [0u64; 256];
    let mut state: u64 = 0x5C47_33A9_D0B1_7E64;
    let mut i = 0;
    while i < 256 {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        table[i] = z ^ (z >> 31);
        i += 1;
    }
    table
}

static GEAR: [u64; 256] = gear_table();

/// The min/avg/max chunk-size knobs of the content-defined chunker
/// ([`ChunkMap::build_cdc`], surfaced as
/// [`crate::config::ChunkingMode::Cdc`]).
///
/// Boundaries are found FastCDC-style: a Gear rolling hash is evaluated
/// from `min_size` on, against a hard mask before the `avg_size` point and
/// an easy mask after it (normalized chunking), with a forced cut at
/// `max_size`. The expected chunk size is ~`avg_size`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CdcParams {
    /// No boundary is placed before this many bytes (also the floor for the
    /// final chunk, which simply ends at EOF).
    pub min_size: usize,
    /// Target average chunk size; drives the boundary masks.
    pub avg_size: usize,
    /// A cut is forced at this many bytes when no content boundary fired.
    pub max_size: usize,
}

impl CdcParams {
    /// Parameters targeting an average chunk of `avg` bytes, with the
    /// conventional `avg/4` minimum and `4*avg` maximum.
    pub fn with_avg(avg: usize) -> Self {
        CdcParams {
            min_size: avg / 4,
            avg_size: avg,
            max_size: avg.saturating_mul(4),
        }
    }

    /// The parameters with the invariants the chunker relies on restored:
    /// `64 ≤ avg`, `1 ≤ min ≤ avg ≤ max`, `max ≤ u32::MAX`.
    fn normalized(&self) -> CdcParams {
        let avg = self.avg_size.clamp(64, 1 << 30);
        CdcParams {
            min_size: self.min_size.clamp(1, avg),
            avg_size: avg,
            max_size: self.max_size.clamp(avg, u32::MAX as usize),
        }
    }
}

impl Default for CdcParams {
    /// The defaults pair with the 1 MiB [`DEFAULT_CHUNK_SIZE`]: 256 KiB min,
    /// 1 MiB average, 4 MiB max.
    fn default() -> Self {
        CdcParams::with_avg(DEFAULT_CHUNK_SIZE)
    }
}

/// Length of the next chunk of `data` under the FastCDC cut rule: the first
/// position past `min_size` where the Gear hash matches the hard mask
/// (before the average point) or the easy mask (after it), else `max_size`,
/// else all of `data`.
fn cdc_cut(data: &[u8], params: &CdcParams) -> usize {
    let len = data.len();
    if len <= params.min_size {
        return len;
    }
    let max = params.max_size.min(len);
    let bits = params.avg_size.ilog2();
    // Normalized chunking: 4x harder than average before the target point,
    // 4x easier after it, squeezing the size distribution toward avg.
    let mask_hard: u64 = (1u64 << (bits + 2)) - 1;
    let mask_easy: u64 = (1u64 << bits.saturating_sub(2)) - 1;
    let normal = params.avg_size.min(max);
    let mut hash: u64 = 0;
    let mut i = params.min_size;
    while i < normal {
        hash = (hash << 1).wrapping_add(GEAR[data[i] as usize]);
        if hash & mask_hard == 0 {
            return i + 1;
        }
        i += 1;
    }
    while i < max {
        hash = (hash << 1).wrapping_add(GEAR[data[i] as usize]);
        if hash & mask_easy == 0 {
            return i + 1;
        }
        i += 1;
    }
    max
}

/// The ordered list of content-addressed chunks making up one file version.
///
/// The chunked data path stores a file as chunks, each addressed by the
/// SHA-256 of its contents, plus this small manifest. The consistency
/// anchor keeps exactly one hash per version — the [`ChunkMap::root_hash`],
/// the SHA-256 of the encoded manifest — so the coordination-service
/// protocol is unchanged while the storage service gains chunk-level dedup
/// (identical chunks are shared across versions) and incremental transfer
/// (only dirty chunks move on close, only missing chunks on read).
///
/// Chunk boundaries come from one of two layouts behind the same extent
/// API ([`ChunkMap::byte_range`], [`ChunkMap::chunks_for_range`], ...):
///
/// * **fixed-size** ([`ChunkMap::build`]) — every chunk is `chunk_size`
///   bytes (the final one may be shorter); serialized as a **v1** manifest,
///   byte-identical to the pre-extent format, so previously committed
///   versions keep their root hashes;
/// * **content-defined** ([`ChunkMap::build_cdc`]) — boundaries follow a
///   Gear/FastCDC rolling hash ([`CdcParams`]), so an insert or delete in
///   the middle of a file only re-cuts the chunks around the edit and the
///   shifted tail re-aligns to identical hashes (shift-resistant dedup);
///   serialized as a **v2** manifest carrying the per-chunk extent table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkMap {
    file_len: u64,
    /// The size knob the map was built with: the stride of a fixed-size map,
    /// the target average of a content-defined one.
    chunk_size: u32,
    chunks: Vec<ContentHash>,
    /// Start offset of chunk `i`; chunk `i` covers
    /// `offsets[i]..offsets[i + 1]` (the last chunk ends at `file_len`).
    /// Always sorted, `offsets[0] == 0`, one entry per chunk.
    offsets: Vec<u64>,
}

impl ChunkMap {
    /// Builds the chunk map of `data` split into fixed `chunk_size`-byte
    /// chunks (the final chunk may be shorter). An empty file has zero
    /// chunks. Serializes as a v1 manifest.
    pub fn build(data: &[u8], chunk_size: usize) -> Self {
        assert!(
            chunk_size > 0 && chunk_size <= u32::MAX as usize,
            "chunk size must be in 1..=u32::MAX"
        );
        ChunkMap {
            file_len: data.len() as u64,
            chunk_size: chunk_size as u32,
            chunks: data.chunks(chunk_size).map(sha256).collect(),
            offsets: (0..data.len() as u64).step_by(chunk_size).collect(),
        }
    }

    /// Builds the chunk map of `data` with content-defined boundaries (Gear
    /// rolling hash, FastCDC-style normalized cut rule; see [`CdcParams`]).
    /// An empty file has zero chunks. Serializes as a v2 manifest carrying
    /// the extent table.
    pub fn build_cdc(data: &[u8], params: &CdcParams) -> Self {
        let params = params.normalized();
        let mut chunks = Vec::new();
        let mut offsets = Vec::new();
        let mut start = 0usize;
        while start < data.len() {
            let len = cdc_cut(&data[start..], &params);
            offsets.push(start as u64);
            chunks.push(sha256(&data[start..start + len]));
            start += len;
        }
        ChunkMap {
            file_len: data.len() as u64,
            chunk_size: params.avg_size as u32,
            chunks,
            offsets,
        }
    }

    /// The map of an empty file.
    pub fn empty(chunk_size: usize) -> Self {
        ChunkMap::build(&[], chunk_size)
    }

    /// Total file length in bytes.
    pub fn file_len(&self) -> u64 {
        self.file_len
    }

    /// The nominal chunk size this map was built with: the fixed stride of a
    /// v1 map, the target average of a content-defined one.
    pub fn chunk_size(&self) -> usize {
        self.chunk_size as usize
    }

    /// The per-chunk content hashes, in file order.
    pub fn chunks(&self) -> &[ContentHash] {
        &self.chunks
    }

    /// Number of chunks.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Byte range of chunk `index` within the file, straight from the
    /// extent table.
    pub fn byte_range(&self, index: usize) -> std::ops::Range<usize> {
        let start = self.offsets[index] as usize;
        let end = self
            .offsets
            .get(index + 1)
            .copied()
            .unwrap_or(self.file_len) as usize;
        start..end
    }

    /// Length in bytes of chunk `index`.
    pub fn chunk_len(&self, index: usize) -> usize {
        self.byte_range(index).len()
    }

    /// Indices of the chunks overlapping the byte range `[offset,
    /// offset + len)`, clamped to the end of the file — found by binary
    /// search over the extent table, so it works for fixed-size and
    /// content-defined layouts alike. This is the offset math behind lazy
    /// byte-range reads: a `read(offset, len)` only has to materialize
    /// exactly these chunks.
    pub fn chunks_for_range(&self, offset: u64, len: usize) -> std::ops::Range<usize> {
        let end = offset.saturating_add(len as u64).min(self.file_len);
        if offset >= end {
            return 0..0;
        }
        // `offsets[0] == 0 <= offset`, so the partition point is >= 1: the
        // chunk containing `offset` is the last one starting at or before it.
        let first = self.offsets.partition_point(|&start| start <= offset) - 1;
        let last = self.offsets.partition_point(|&start| start < end);
        first..last
    }

    /// The single hash the consistency anchor stores for this version: the
    /// SHA-256 of the encoded manifest.
    pub fn root_hash(&self) -> ContentHash {
        sha256(&self.encode())
    }

    /// The distinct chunk hashes of this version — the set of references a
    /// version holds in the global chunk store (a chunk repeated within the
    /// file still counts as one reference). Ordered, so refcount bookkeeping
    /// derived from it is iteration-order deterministic.
    pub fn unique_chunks(&self) -> std::collections::BTreeSet<ContentHash> {
        self.chunks.iter().copied().collect()
    }

    /// Indices of the chunks of this map that `prev` does not already hold —
    /// the chunks a writer must upload when the previous version is `prev`.
    /// Purely a hash-set comparison, so it is meaningful across maps with
    /// different boundaries (fixed vs content-defined, or two
    /// content-defined maps of shifted content).
    pub fn dirty_chunks(&self, prev: Option<&ChunkMap>) -> Vec<usize> {
        let existing: std::collections::HashSet<&ContentHash> =
            prev.map(|p| p.chunks.iter().collect()).unwrap_or_default();
        self.chunks
            .iter()
            .enumerate()
            .filter(|(_, h)| !existing.contains(h))
            .map(|(i, _)| i)
            .collect()
    }

    /// Whether the extent table is exactly the fixed-size layout of
    /// `chunk_size` — i.e. the map can round-trip through the v1 encoding.
    fn is_uniform(&self) -> bool {
        let stride = self.chunk_size as u64;
        stride > 0
            && self.chunks.len() as u64 == self.file_len.div_ceil(stride)
            && self
                .offsets
                .iter()
                .enumerate()
                .all(|(i, &start)| start == i as u64 * stride)
    }

    /// Serializes the manifest (what the storage service stores under the
    /// root hash). Fixed-size maps emit the v1 format (byte-identical to the
    /// pre-extent encoding, keeping committed root hashes stable);
    /// content-defined maps emit v2 with the per-chunk extent table.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        if self.is_uniform() {
            w.put_u64(self.file_len);
            w.put_u64(self.chunk_size as u64);
            w.put_u64(self.chunks.len() as u64);
            for hash in &self.chunks {
                w.put_bytes(hash);
            }
        } else {
            w.put_u64(MANIFEST_V2_MAGIC);
            w.put_u8(2);
            w.put_u64(self.file_len);
            w.put_u64(self.chunk_size as u64);
            w.put_u64(self.chunks.len() as u64);
            for (index, hash) in self.chunks.iter().enumerate() {
                w.put_u64(self.chunk_len(index) as u64);
                w.put_bytes(hash);
            }
        }
        w.finish()
    }

    /// Deserializes a manifest — v1 (fixed-size) or v2 (extent table).
    ///
    /// Fails closed on hostile input: the claimed chunk count is bounded by
    /// the bytes actually present before any allocation (a crafted
    /// `file_len = u64::MAX, chunk_size = 1` header errors instead of
    /// aborting on `Vec::with_capacity`), `file_len` is bounded by
    /// [`MAX_FILE_LEN`], and any unconsumed trailing bytes are rejected so
    /// two distinct blobs can never decode to the same manifest.
    pub fn decode(buf: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(buf);
        let first = r.get_u64()?;
        let map = if first == MANIFEST_V2_MAGIC {
            Self::decode_v2(&mut r)?
        } else {
            Self::decode_v1(first, &mut r)?
        };
        if !r.is_exhausted() {
            return Err(DecodeError {
                reason: format!("{} trailing bytes after manifest", r.remaining()),
            });
        }
        Ok(map)
    }

    /// Checked conversion of a claimed chunk count: it must be covered by
    /// the remaining input at `record_len` bytes per chunk *before* any
    /// capacity is reserved for it.
    fn checked_count(
        count: u64,
        remaining: usize,
        record_len: usize,
    ) -> Result<usize, DecodeError> {
        if count > (remaining / record_len) as u64 {
            return Err(DecodeError {
                reason: format!("chunk count {count} exceeds the {remaining} bytes of input"),
            });
        }
        Ok(count as usize)
    }

    fn checked_file_len(file_len: u64) -> Result<u64, DecodeError> {
        if file_len > MAX_FILE_LEN {
            return Err(DecodeError {
                reason: format!("file length {file_len} exceeds the {MAX_FILE_LEN} maximum"),
            });
        }
        Ok(file_len)
    }

    fn read_hash(r: &mut Reader<'_>) -> Result<ContentHash, DecodeError> {
        let bytes = r.get_bytes()?;
        if bytes.len() != 32 {
            return Err(DecodeError {
                reason: "chunk hash must be 32 bytes".into(),
            });
        }
        let mut h = [0u8; 32];
        h.copy_from_slice(&bytes);
        Ok(h)
    }

    /// The v1 body: `file_len` (already read), `chunk_size`, `count`, then
    /// the hashes; the extent table is implied by the fixed stride.
    fn decode_v1(file_len: u64, r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let file_len = Self::checked_file_len(file_len)?;
        let chunk_size = r.get_u64()?;
        if chunk_size == 0 || chunk_size > u32::MAX as u64 {
            return Err(DecodeError {
                reason: format!("invalid chunk size {chunk_size}"),
            });
        }
        let count = r.get_u64()?;
        if count != file_len.div_ceil(chunk_size) {
            return Err(DecodeError {
                reason: format!("chunk count {count} does not cover file of {file_len} bytes"),
            });
        }
        let count = Self::checked_count(count, r.remaining(), V1_CHUNK_RECORD_LEN)?;
        let mut chunks = Vec::with_capacity(count);
        for _ in 0..count {
            chunks.push(Self::read_hash(r)?);
        }
        Ok(ChunkMap {
            file_len,
            chunk_size: chunk_size as u32,
            chunks,
            offsets: (0..file_len).step_by(chunk_size as usize).collect(),
        })
    }

    /// The v2 body (after the magic): version byte, `file_len`, the nominal
    /// `chunk_size`, `count`, then per chunk its extent length and hash.
    /// The extents must tile `[0, file_len)` exactly.
    fn decode_v2(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let version = r.get_u8()?;
        if version != 2 {
            return Err(DecodeError {
                reason: format!("unsupported manifest version {version}"),
            });
        }
        let file_len = Self::checked_file_len(r.get_u64()?)?;
        let chunk_size = r.get_u64()?;
        if chunk_size == 0 || chunk_size > u32::MAX as u64 {
            return Err(DecodeError {
                reason: format!("invalid chunk size {chunk_size}"),
            });
        }
        let count = Self::checked_count(r.get_u64()?, r.remaining(), V2_CHUNK_RECORD_LEN)?;
        let mut chunks = Vec::with_capacity(count);
        let mut offsets = Vec::with_capacity(count);
        let mut next_start = 0u64;
        for _ in 0..count {
            let len = r.get_u64()?;
            if len == 0 || next_start.saturating_add(len) > file_len {
                return Err(DecodeError {
                    reason: format!("chunk extent of {len} bytes overruns the file"),
                });
            }
            offsets.push(next_start);
            next_start += len;
            chunks.push(Self::read_hash(r)?);
        }
        if next_start != file_len {
            return Err(DecodeError {
                reason: format!("extents cover {next_start} of {file_len} file bytes"),
            });
        }
        Ok(ChunkMap {
            file_len,
            chunk_size: chunk_size as u32,
            chunks,
            offsets,
        })
    }
}

/// Type of a file-system object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileType {
    /// A regular file.
    File,
    /// A directory.
    Directory,
}

/// The metadata tuple SCFS keeps for every file-system object
/// (paper §2.5.1): name, type, parent, POSIX-ish attributes, the opaque
/// identifier of the object in the storage service, and the hash of the
/// current version — the last two being exactly the `(id, hash)` pair stored
/// in the consistency anchor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileMetadata {
    /// Absolute path of the object (doubles as its name + parent).
    pub path: String,
    /// File or directory.
    pub file_type: FileType,
    /// Size of the current version in bytes (0 for directories).
    pub size: u64,
    /// Owner of the object.
    pub owner: AccountId,
    /// Access control list (empty = private).
    pub acl: Acl,
    /// Creation instant.
    pub created_at: SimInstant,
    /// Last-modification instant.
    pub modified_at: SimInstant,
    /// Opaque identifier of the file's data in the storage service
    /// (the `id` of the consistency-anchor algorithm).
    pub storage_id: String,
    /// SHA-256 of the current version (the `hash` of the consistency anchor);
    /// `None` until the first version is written.
    pub version_hash: Option<ContentHash>,
    /// Number of versions written so far.
    pub version_count: u64,
    /// Whether the user deleted the object (kept as a tombstone until the
    /// garbage collector reclaims it, paper §2.5.3).
    pub deleted: bool,
}

impl FileMetadata {
    /// Creates metadata for a new, empty file.
    pub fn new_file(path: &str, owner: AccountId, storage_id: String, now: SimInstant) -> Self {
        FileMetadata {
            path: path.to_string(),
            file_type: FileType::File,
            size: 0,
            owner,
            acl: Acl::private(),
            created_at: now,
            modified_at: now,
            storage_id,
            version_hash: None,
            version_count: 0,
            deleted: false,
        }
    }

    /// Creates metadata for a new directory.
    pub fn new_directory(path: &str, owner: AccountId, now: SimInstant) -> Self {
        FileMetadata {
            path: path.to_string(),
            file_type: FileType::Directory,
            size: 0,
            owner,
            acl: Acl::private(),
            created_at: now,
            modified_at: now,
            storage_id: String::new(),
            version_hash: None,
            version_count: 0,
            deleted: false,
        }
    }

    /// Whether the object is shared with at least one other user.
    pub fn is_shared(&self) -> bool {
        !self.acl.is_empty()
    }

    /// Serializes the metadata tuple (stored in the coordination service or
    /// in a private name space; ~1 KB per the paper's capacity analysis).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_str(&self.path);
        w.put_u8(match self.file_type {
            FileType::File => 0,
            FileType::Directory => 1,
        });
        w.put_u64(self.size);
        w.put_str(self.owner.as_str());
        w.put_u64(self.acl.len() as u64);
        for (account, perm) in self.acl.grants() {
            w.put_str(account.as_str());
            w.put_u8(match perm {
                cloud_store::types::Permission::Read => 0,
                cloud_store::types::Permission::Write => 1,
            });
        }
        w.put_u64(self.created_at.as_nanos());
        w.put_u64(self.modified_at.as_nanos());
        w.put_str(&self.storage_id);
        match &self.version_hash {
            Some(h) => {
                w.put_u8(1);
                w.put_bytes(h);
            }
            None => {
                w.put_u8(0);
            }
        }
        w.put_u64(self.version_count);
        w.put_u8(u8::from(self.deleted));
        w.finish()
    }

    /// Deserializes a metadata tuple.
    pub fn decode(buf: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(buf);
        let path = r.get_str()?;
        let file_type = match r.get_u8()? {
            0 => FileType::File,
            _ => FileType::Directory,
        };
        let size = r.get_u64()?;
        let owner = AccountId::new(r.get_str()?);
        let grant_count = r.get_u64()? as usize;
        let mut acl = Acl::private();
        for _ in 0..grant_count {
            let account = AccountId::new(r.get_str()?);
            let perm = match r.get_u8()? {
                0 => cloud_store::types::Permission::Read,
                _ => cloud_store::types::Permission::Write,
            };
            acl.grant(account, perm);
        }
        let created_at = SimInstant::from_nanos(r.get_u64()?);
        let modified_at = SimInstant::from_nanos(r.get_u64()?);
        let storage_id = r.get_str()?;
        let version_hash = if r.get_u8()? == 1 {
            let bytes = r.get_bytes()?;
            if bytes.len() != 32 {
                return Err(DecodeError {
                    reason: "version hash must be 32 bytes".into(),
                });
            }
            let mut h = [0u8; 32];
            h.copy_from_slice(&bytes);
            Some(h)
        } else {
            None
        };
        let version_count = r.get_u64()?;
        let deleted = r.get_u8()? != 0;
        Ok(FileMetadata {
            path,
            file_type,
            size,
            owner,
            acl,
            created_at,
            modified_at,
            storage_id,
            version_hash,
            version_count,
            deleted,
        })
    }
}

/// Flags passed to `open`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpenFlags {
    /// Open for reading.
    pub read: bool,
    /// Open for writing (requires the write lock in shared modes).
    pub write: bool,
    /// Create the file if it does not exist.
    pub create: bool,
    /// Truncate the file to zero length on open.
    pub truncate: bool,
}

impl OpenFlags {
    /// Read-only open.
    pub fn read_only() -> Self {
        OpenFlags {
            read: true,
            ..OpenFlags::default()
        }
    }

    /// Read-write open (no create).
    pub fn read_write() -> Self {
        OpenFlags {
            read: true,
            write: true,
            ..OpenFlags::default()
        }
    }

    /// Create (or open) for writing.
    pub fn create() -> Self {
        OpenFlags {
            read: true,
            write: true,
            create: true,
            ..OpenFlags::default()
        }
    }

    /// Create and truncate for writing.
    pub fn create_truncate() -> Self {
        OpenFlags {
            read: true,
            write: true,
            create: true,
            truncate: true,
        }
    }
}

/// An open-file handle returned by `open`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileHandle(pub u64);

/// Normalizes a path: must be absolute, collapses duplicate slashes and
/// strips a trailing slash (except for the root).
pub fn normalize_path(path: &str) -> Result<String, crate::error::ScfsError> {
    if !path.starts_with('/') {
        return Err(crate::error::ScfsError::invalid(format!(
            "path must be absolute: {path}"
        )));
    }
    let mut parts: Vec<&str> = Vec::new();
    for part in path.split('/') {
        match part {
            "" | "." => {}
            ".." => {
                parts.pop();
            }
            p => parts.push(p),
        }
    }
    if parts.is_empty() {
        Ok("/".to_string())
    } else {
        Ok(format!("/{}", parts.join("/")))
    }
}

/// Returns the parent directory of a normalized path (`/` for top-level entries).
pub fn parent_of(path: &str) -> String {
    match path.rfind('/') {
        Some(0) | None => "/".to_string(),
        Some(idx) => path[..idx].to_string(),
    }
}

/// Returns the final component of a normalized path.
pub fn basename_of(path: &str) -> &str {
    path.rsplit('/').next().unwrap_or(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloud_store::types::Permission;
    use scfs_crypto::sha256;

    #[test]
    fn metadata_encode_decode_round_trip() {
        let mut md = FileMetadata::new_file(
            "/docs/report.odt",
            "alice".into(),
            "file-42".into(),
            SimInstant::from_secs(100),
        );
        md.size = 1234;
        md.version_hash = Some(sha256(b"contents"));
        md.version_count = 3;
        md.acl.grant("bob".into(), Permission::Read);
        md.deleted = false;
        let decoded = FileMetadata::decode(&md.encode()).unwrap();
        assert_eq!(decoded, md);
    }

    #[test]
    fn directory_metadata_round_trips() {
        let md = FileMetadata::new_directory("/docs", "alice".into(), SimInstant::from_secs(5));
        let decoded = FileMetadata::decode(&md.encode()).unwrap();
        assert_eq!(decoded, md);
        assert_eq!(decoded.file_type, FileType::Directory);
        assert!(!decoded.is_shared());
    }

    #[test]
    fn metadata_tuple_is_about_1kb_with_long_names() {
        // The paper assumes ~1 KB tuples with 100-byte file names.
        let long_name = format!("/{}", "d".repeat(100));
        let md = FileMetadata::new_file(&long_name, "alice".into(), "id".into(), SimInstant::EPOCH);
        let encoded = md.encode();
        assert!(encoded.len() < 1024, "tuple was {} bytes", encoded.len());
    }

    #[test]
    fn shared_flag_follows_acl() {
        let mut md = FileMetadata::new_file("/f", "alice".into(), "id".into(), SimInstant::EPOCH);
        assert!(!md.is_shared());
        md.acl.grant("bob".into(), Permission::Write);
        assert!(md.is_shared());
    }

    #[test]
    fn open_flag_constructors() {
        assert!(OpenFlags::read_only().read);
        assert!(!OpenFlags::read_only().write);
        assert!(OpenFlags::create().create);
        assert!(OpenFlags::create_truncate().truncate);
        assert!(OpenFlags::read_write().write);
    }

    #[test]
    fn path_normalization() {
        assert_eq!(normalize_path("/a//b/").unwrap(), "/a/b");
        assert_eq!(normalize_path("/").unwrap(), "/");
        assert_eq!(normalize_path("/a/./b/../c").unwrap(), "/a/c");
        assert!(normalize_path("relative/path").is_err());
    }

    #[test]
    fn parent_and_basename() {
        assert_eq!(parent_of("/a/b/c"), "/a/b");
        assert_eq!(parent_of("/a"), "/");
        assert_eq!(basename_of("/a/b/c"), "c");
        assert_eq!(basename_of("/x"), "x");
    }

    #[test]
    fn corrupted_metadata_fails_to_decode() {
        let md = FileMetadata::new_file("/f", "a".into(), "id".into(), SimInstant::EPOCH);
        let mut bytes = md.encode();
        bytes.truncate(bytes.len() / 2);
        assert!(FileMetadata::decode(&bytes).is_err());
    }

    #[test]
    fn chunk_map_splits_and_round_trips() {
        let data = vec![3u8; 2500];
        let map = ChunkMap::build(&data, 1000);
        assert_eq!(map.file_len(), 2500);
        assert_eq!(map.chunk_count(), 3);
        assert_eq!(map.byte_range(0), 0..1000);
        assert_eq!(map.byte_range(2), 2000..2500);
        let decoded = ChunkMap::decode(&map.encode()).unwrap();
        assert_eq!(decoded, map);
        assert_eq!(decoded.root_hash(), map.root_hash());
    }

    #[test]
    fn chunk_map_edge_sizes() {
        // Empty file: no chunks, but still a well-defined root hash.
        let empty = ChunkMap::empty(1000);
        assert_eq!(empty.chunk_count(), 0);
        assert_eq!(ChunkMap::decode(&empty.encode()).unwrap(), empty);
        // Exactly one chunk, one byte less, one byte more.
        assert_eq!(ChunkMap::build(&vec![0; 1000], 1000).chunk_count(), 1);
        assert_eq!(ChunkMap::build(&vec![0; 999], 1000).chunk_count(), 1);
        let plus = ChunkMap::build(&vec![0; 1001], 1000);
        assert_eq!(plus.chunk_count(), 2);
        assert_eq!(plus.byte_range(1), 1000..1001);
    }

    #[test]
    fn chunks_for_range_maps_bytes_to_chunk_indices() {
        let map = ChunkMap::build(&vec![0u8; 2500], 1000);
        assert_eq!(map.chunks_for_range(0, 1), 0..1);
        assert_eq!(map.chunks_for_range(999, 2), 0..2);
        assert_eq!(map.chunks_for_range(1000, 1000), 1..2);
        assert_eq!(map.chunks_for_range(0, 2500), 0..3);
        // Clamped to EOF, empty beyond it, zero-length is empty.
        assert_eq!(map.chunks_for_range(2400, 5000), 2..3);
        assert_eq!(map.chunks_for_range(2500, 10), 0..0);
        assert_eq!(map.chunks_for_range(500, 0), 0..0);
        // Huge lengths must not overflow.
        assert_eq!(map.chunks_for_range(1, usize::MAX), 0..3);
        assert_eq!(map.chunk_len(2), 500);
    }

    #[test]
    fn identical_chunks_share_hashes() {
        let data = vec![7u8; 3000];
        let map = ChunkMap::build(&data, 1000);
        assert_eq!(map.chunks()[0], map.chunks()[1]);
        assert_eq!(map.chunks()[1], map.chunks()[2]);
    }

    #[test]
    fn dirty_chunks_are_only_the_changed_ones() {
        let mut data = vec![1u8; 4000];
        let v1 = ChunkMap::build(&data, 1000);
        // With no previous version every chunk is dirty (within-version
        // dedup happens at upload time in the backend).
        assert_eq!(v1.dirty_chunks(None).len(), 4);
        data[2500] = 9;
        let v2 = ChunkMap::build(&data, 1000);
        assert_eq!(v2.dirty_chunks(Some(&v1)), vec![2]);
        // An append adds exactly one dirty chunk.
        data.extend_from_slice(&[5u8; 10]);
        let v3 = ChunkMap::build(&data, 1000);
        assert_eq!(v3.dirty_chunks(Some(&v2)), vec![4]);
        // Same content: nothing dirty.
        let v4 = ChunkMap::build(&data, 1000);
        assert!(v4.dirty_chunks(Some(&v3)).is_empty());
        assert_eq!(v4.root_hash(), v3.root_hash());
    }

    #[test]
    fn chunk_map_rejects_inconsistent_encodings() {
        let map = ChunkMap::build(&[0u8; 100], 50);
        let mut bytes = map.encode();
        bytes.truncate(bytes.len() / 2);
        assert!(ChunkMap::decode(&bytes).is_err());
        // A manifest whose chunk count cannot cover the file is rejected.
        let mut w = Writer::new();
        w.put_u64(100).put_u64(50).put_u64(1);
        w.put_bytes(&[0u8; 32]);
        assert!(ChunkMap::decode(&w.finish()).is_err());
    }

    /// Deterministic pseudo-random bytes for the CDC tests — constant or
    /// periodic fills would make every chunk identical.
    fn random_bytes(len: usize, seed: u64) -> Vec<u8> {
        sim_core::rng::DetRng::new(seed).bytes(len)
    }

    #[test]
    fn cdc_extents_tile_the_file_within_bounds() {
        let params = CdcParams::with_avg(1024);
        let data = random_bytes(100_000, 7);
        let map = ChunkMap::build_cdc(&data, &params);
        assert_eq!(map.file_len(), 100_000);
        assert!(map.chunk_count() > 0);
        let mut covered = 0usize;
        for index in 0..map.chunk_count() {
            let range = map.byte_range(index);
            assert_eq!(range.start, covered, "extents must tile contiguously");
            assert!(!range.is_empty());
            assert!(range.len() <= params.max_size, "chunk exceeds max_size");
            if index + 1 < map.chunk_count() {
                assert!(
                    range.len() >= params.min_size,
                    "non-final chunk below min_size"
                );
            }
            assert_eq!(map.chunks()[index], sha256(&data[range.clone()]));
            covered = range.end;
        }
        assert_eq!(covered, data.len());
        // The average lands in the right ballpark (within 4x either way).
        let avg = data.len() / map.chunk_count();
        assert!(
            avg >= params.avg_size / 4 && avg <= params.avg_size * 4,
            "average chunk of {avg} bytes is far from the {} target",
            params.avg_size
        );
    }

    #[test]
    fn cdc_boundaries_are_deterministic_and_content_defined() {
        let params = CdcParams::with_avg(1024);
        let data = random_bytes(50_000, 3);
        let a = ChunkMap::build_cdc(&data, &params);
        let b = ChunkMap::build_cdc(&data, &params);
        assert_eq!(a, b, "same content, same boundaries");
        assert_eq!(a.root_hash(), b.root_hash());
        // Empty files still work.
        let empty = ChunkMap::build_cdc(&[], &params);
        assert_eq!(empty.chunk_count(), 0);
        assert_eq!(ChunkMap::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn cdc_midfile_insert_shifts_only_o_edit_chunks() {
        let params = CdcParams::with_avg(1024);
        let data = random_bytes(100_000, 11);
        let v1 = ChunkMap::build_cdc(&data, &params);
        let mut edited = data.clone();
        let mid = edited.len() / 2;
        edited.splice(mid..mid, random_bytes(64, 99));
        let v2 = ChunkMap::build_cdc(&edited, &params);
        let dirty = v2.dirty_chunks(Some(&v1));
        let dirty_bytes: usize = dirty.iter().map(|&i| v2.chunk_len(i)).sum();
        assert!(
            dirty_bytes <= 64 + 3 * params.max_size,
            "a 64-byte insert dirtied {dirty_bytes} bytes across {} chunks",
            dirty.len()
        );
        // Fixed-size chunking re-uploads the whole shifted tail instead.
        let f1 = ChunkMap::build(&data, 1024);
        let f2 = ChunkMap::build(&edited, 1024);
        assert!(
            f2.dirty_chunks(Some(&f1)).len() > f2.chunk_count() / 3,
            "fixed-size chunking should dirty the tail after a mid-file insert"
        );
    }

    #[test]
    fn v2_manifest_round_trips_with_extent_table() {
        let params = CdcParams::with_avg(512);
        let data = random_bytes(20_000, 5);
        let map = ChunkMap::build_cdc(&data, &params);
        let encoded = map.encode();
        assert_eq!(&encoded[..8], &u64::MAX.to_le_bytes(), "v2 magic");
        let decoded = ChunkMap::decode(&encoded).unwrap();
        assert_eq!(decoded, map);
        assert_eq!(decoded.root_hash(), map.root_hash());
        for index in 0..map.chunk_count() {
            assert_eq!(decoded.byte_range(index), map.byte_range(index));
        }
    }

    #[test]
    fn fixed_maps_still_encode_the_v1_byte_layout() {
        // Root-hash stability across the extent refactor: a fixed-size map
        // must keep producing the exact pre-extent v1 bytes, so committed
        // registries and anchors keep resolving.
        let data = vec![3u8; 2500];
        let map = ChunkMap::build(&data, 1000);
        let mut w = Writer::new();
        w.put_u64(2500).put_u64(1000).put_u64(3);
        for chunk in data.chunks(1000) {
            w.put_bytes(&sha256(chunk));
        }
        assert_eq!(map.encode(), w.finish());
    }

    #[test]
    fn crafted_file_len_manifest_fails_closed() {
        // The old decoder called Vec::with_capacity(count) before reading a
        // single hash: `file_len = u64::MAX, chunk_size = 1, count = 2^64-1`
        // aborted the process on allocation. It must now fail closed.
        let mut w = Writer::new();
        w.put_u64(u64::MAX - 1).put_u64(1).put_u64(u64::MAX - 1);
        assert!(ChunkMap::decode(&w.finish()).is_err());
        // Bounded file lengths with absurd counts fail too (count is bounded
        // by the actual input length before any allocation).
        let mut w = Writer::new();
        w.put_u64(1 << 39).put_u64(1).put_u64(1 << 39);
        assert!(ChunkMap::decode(&w.finish()).is_err());
        // And a v2 header claiming 2^50 chunks in a 100-byte blob.
        let mut w = Writer::new();
        w.put_u64(u64::MAX);
        w.put_u8(2);
        w.put_u64(1 << 30).put_u64(1024).put_u64(1 << 50);
        assert!(ChunkMap::decode(&w.finish()).is_err());
        // A plausible count over an over-long file is rejected on file_len.
        let mut w = Writer::new();
        w.put_u64(MAX_FILE_LEN + 1)
            .put_u64(u32::MAX as u64)
            .put_u64((MAX_FILE_LEN + 1).div_ceil(u32::MAX as u64));
        assert!(ChunkMap::decode(&w.finish()).is_err());
    }

    #[test]
    fn trailing_garbage_after_a_manifest_is_rejected() {
        // Two distinct blobs must never decode to the same manifest: bytes
        // past the last hash are an error, in both versions.
        let fixed = ChunkMap::build(&[7u8; 2500], 1000);
        let mut bytes = fixed.encode();
        assert!(ChunkMap::decode(&bytes).is_ok());
        bytes.push(0);
        assert!(ChunkMap::decode(&bytes).is_err());

        let cdc = ChunkMap::build_cdc(&random_bytes(5000, 1), &CdcParams::with_avg(512));
        let mut bytes = cdc.encode();
        assert!(ChunkMap::decode(&bytes).is_ok());
        bytes.extend_from_slice(b"junk");
        assert!(ChunkMap::decode(&bytes).is_err());
    }

    #[test]
    fn v2_rejects_inconsistent_extents() {
        let map = ChunkMap::build_cdc(&random_bytes(5000, 2), &CdcParams::with_avg(512));
        let good = map.encode();
        // Corrupt the first extent length (bytes 29..37: magic 8 + version 1
        // + file_len 8 + chunk_size 8 + count 8 = offset 33... locate by
        // re-encoding with a wrong total instead).
        let mut w = Writer::new();
        w.put_u64(u64::MAX);
        w.put_u8(2);
        w.put_u64(map.file_len() + 1); // extents no longer cover the file
        w.put_u64(512).put_u64(map.chunk_count() as u64);
        for index in 0..map.chunk_count() {
            w.put_u64(map.chunk_len(index) as u64);
            w.put_bytes(&map.chunks()[index]);
        }
        assert!(ChunkMap::decode(&w.finish()).is_err());
        // A zero-length extent is rejected.
        let mut w = Writer::new();
        w.put_u64(u64::MAX);
        w.put_u8(2);
        w.put_u64(32).put_u64(512).put_u64(2);
        w.put_u64(0);
        w.put_bytes(&sha256(b"a"));
        w.put_u64(32);
        w.put_bytes(&sha256(b"b"));
        assert!(ChunkMap::decode(&w.finish()).is_err());
        // An unsupported version byte is rejected.
        let mut bad = good.clone();
        bad[8] = 9;
        assert!(ChunkMap::decode(&bad).is_err());
        // The untouched encoding still decodes.
        assert!(ChunkMap::decode(&good).is_ok());
    }
}
