//! The consistency-anchor algorithm (paper §2.4, Figure 3).
//!
//! SCFS turns an eventually-consistent storage service (SS) into a strongly
//! consistent one by anchoring it on a small, strongly consistent metadata
//! store (CA):
//!
//! ```text
//! WRITE(id, v):                      READ(id):
//!   w1: h  <- Hash(v)                  r1: h <- CA.read(id)
//!   w2: SS.write(id|h, v)              r2: do v <- SS.read(id|h) while v = null
//!   w3: CA.write(id, h)                r3: return (Hash(v) = h) ? v : null
//! ```
//!
//! In SCFS the CA is the coordination service (or a private name space) and
//! the SS is the single-cloud or DepSky backend; the agent inlines the write
//! side into `close` and the read side into `open`. This module provides the
//! read-side retry loop as a reusable helper — it is where the eventual
//! consistency of the clouds is actually absorbed — plus latency accounting
//! for how long the loop had to spin.

use cloud_store::store::OpCtx;
use scfs_crypto::ContentHash;
use sim_core::time::SimDuration;

use crate::backend::FileStorage;
use crate::error::ScfsError;
use crate::transfer::TransferOptions;
use crate::types::ChunkMap;

/// Result of an anchored fetch, with retry accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Anchored<T> {
    /// The fetched value.
    pub data: T,
    /// Number of retries the loop needed before the version became visible
    /// (0 means the first attempt succeeded).
    pub retries: usize,
}

/// Result of an anchored whole-file read.
pub type AnchoredRead = Anchored<Vec<u8>>;

/// Runs `op` against the storage service, retrying while it reports a
/// transient error — the version is not yet visible (step r2 of Figure 3).
///
/// Each retry backs off by `backoff` of virtual time before asking again; the
/// loop gives up after `max_retries` attempts and surfaces the last transient
/// error, which callers translate into an I/O error.
pub fn anchored_fetch<T>(
    ctx: &mut OpCtx<'_>,
    max_retries: usize,
    backoff: SimDuration,
    mut op: impl FnMut(&mut OpCtx<'_>) -> Result<T, ScfsError>,
) -> Result<Anchored<T>, ScfsError> {
    let mut retries = 0usize;
    loop {
        match op(ctx) {
            Ok(data) => return Ok(Anchored { data, retries }),
            Err(ScfsError::Storage(e)) if e.is_transient() => {
                if retries >= max_retries {
                    return Err(ScfsError::Storage(e));
                }
                retries += 1;
                ctx.clock.advance(backoff);
            }
            Err(e) => return Err(e),
        }
    }
}

/// Reads and reassembles the whole version of `id` whose root hash is `hash`
/// from the storage service, retrying while it is not yet visible. The
/// chunks move through the transfer engine under `opts`.
pub fn anchored_read(
    ctx: &mut OpCtx<'_>,
    storage: &dyn FileStorage,
    id: &str,
    hash: &ContentHash,
    max_retries: usize,
    backoff: SimDuration,
    opts: &TransferOptions,
) -> Result<AnchoredRead, ScfsError> {
    anchored_fetch(ctx, max_retries, backoff, |c| {
        storage.read_version(c, id, hash, opts)
    })
}

/// Reads the chunk map of the version of `id` whose root hash is `hash`,
/// retrying while it is not yet visible.
pub fn anchored_manifest(
    ctx: &mut OpCtx<'_>,
    storage: &dyn FileStorage,
    id: &str,
    hash: &ContentHash,
    max_retries: usize,
    backoff: SimDuration,
) -> Result<Anchored<ChunkMap>, ScfsError> {
    anchored_fetch(ctx, max_retries, backoff, |c| {
        storage.read_manifest(c, id, hash)
    })
}

/// Reads one chunk of `id` by content hash, retrying while it is not yet
/// visible.
pub fn anchored_chunk(
    ctx: &mut OpCtx<'_>,
    storage: &dyn FileStorage,
    id: &str,
    hash: &ContentHash,
    max_retries: usize,
    backoff: SimDuration,
) -> Result<Anchored<Vec<u8>>, ScfsError> {
    anchored_fetch(ctx, max_retries, backoff, |c| {
        storage.read_chunk(c, id, hash)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::SingleCloudStorage;
    use cloud_store::providers::{ConsistencyMode, ProviderProfile};
    use cloud_store::sim_cloud::SimulatedCloud;
    use sim_core::latency::LatencyModel;
    use sim_core::time::Clock;
    use std::sync::Arc;

    /// Builds a single-cloud backend whose writes only become visible after
    /// five seconds, modelling an aggressively eventually-consistent store.
    fn slow_visibility_storage() -> SingleCloudStorage {
        let mut profile = ProviderProfile::instantaneous("ec");
        profile.consistency = ConsistencyMode::Eventual {
            visibility: LatencyModel::constant_ms(5_000.0),
        };
        SingleCloudStorage::new(Arc::new(SimulatedCloud::new(profile, 1)))
    }

    fn write(
        storage: &dyn FileStorage,
        ctx: &mut OpCtx<'_>,
        id: &str,
        data: &[u8],
    ) -> scfs_crypto::ContentHash {
        let map = ChunkMap::build(data, 1024);
        storage
            .write_version(
                ctx,
                id,
                data,
                &map,
                None,
                true,
                None,
                &TransferOptions::default(),
            )
            .unwrap()
            .root_hash
    }

    #[test]
    fn read_retries_until_the_write_becomes_visible() {
        let storage = slow_visibility_storage();
        let mut clock = Clock::new();
        let mut ctx = OpCtx::new(&mut clock, "alice".into());
        let data = b"anchored contents".to_vec();
        let hash = write(&storage, &mut ctx, "f", &data);

        // Immediately after the write the object is invisible; the anchored
        // read must spin until the visibility window (5 s) elapses.
        let result = anchored_read(
            &mut ctx,
            &storage,
            "f",
            &hash,
            100,
            SimDuration::from_millis(200),
            &TransferOptions::default(),
        )
        .unwrap();
        assert_eq!(result.data, data);
        assert!(result.retries > 0, "expected at least one retry");
        assert!(clock.now().as_secs_f64() >= 5.0);
    }

    #[test]
    fn read_gives_up_after_max_retries() {
        let storage = slow_visibility_storage();
        let mut clock = Clock::new();
        let mut ctx = OpCtx::new(&mut clock, "alice".into());
        let hash = scfs_crypto::sha256(b"never written");
        let err = anchored_read(
            &mut ctx,
            &storage,
            "f",
            &hash,
            3,
            SimDuration::from_millis(100),
            &TransferOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, ScfsError::Storage(_)));
        // 3 retries of 100 ms each were charged to the clock.
        assert!(clock.now().as_millis_f64() >= 300.0);
    }

    #[test]
    fn immediate_visibility_needs_no_retries() {
        let storage = SingleCloudStorage::new(Arc::new(SimulatedCloud::test("fast")));
        let mut clock = Clock::new();
        let mut ctx = OpCtx::new(&mut clock, "alice".into());
        let data = b"visible at once".to_vec();
        let hash = write(&storage, &mut ctx, "f", &data);
        let result = anchored_read(
            &mut ctx,
            &storage,
            "f",
            &hash,
            10,
            SimDuration::from_millis(50),
            &TransferOptions::default(),
        )
        .unwrap();
        assert_eq!(result.retries, 0);
        assert_eq!(result.data, data);
    }
}
