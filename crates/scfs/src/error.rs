//! The SCFS error type.

use std::fmt;

use cloud_store::error::StorageError;
use coord::error::CoordError;

/// Errors returned by the SCFS agent and its services.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScfsError {
    /// The path does not exist.
    NotFound {
        /// Offending path.
        path: String,
    },
    /// The path already exists where exclusive creation was requested.
    AlreadyExists {
        /// Offending path.
        path: String,
    },
    /// The operation expected a file but found a directory (or vice versa).
    WrongType {
        /// Offending path.
        path: String,
        /// What was expected ("file" or "directory").
        expected: &'static str,
    },
    /// A directory that must be empty is not.
    NotEmpty {
        /// Offending path.
        path: String,
    },
    /// The caller lacks the required permission.
    PermissionDenied {
        /// Offending path.
        path: String,
    },
    /// Another client holds the write lock on the file.
    Locked {
        /// Offending path.
        path: String,
        /// Session holding the lock.
        holder: String,
    },
    /// The file handle is unknown or already closed.
    BadHandle {
        /// The offending handle value.
        handle: u64,
    },
    /// The storage backend failed.
    Storage(StorageError),
    /// The coordination service failed.
    Coordination(CoordError),
    /// The request was malformed (bad path, bad flags, ...).
    Invalid {
        /// Why the request was rejected.
        reason: String,
    },
}

impl ScfsError {
    /// Convenience constructor for [`ScfsError::NotFound`].
    pub fn not_found(path: impl Into<String>) -> Self {
        ScfsError::NotFound { path: path.into() }
    }

    /// Convenience constructor for [`ScfsError::Invalid`].
    pub fn invalid(reason: impl Into<String>) -> Self {
        ScfsError::Invalid {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for ScfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScfsError::NotFound { path } => write!(f, "no such file or directory: {path}"),
            ScfsError::AlreadyExists { path } => write!(f, "file exists: {path}"),
            ScfsError::WrongType { path, expected } => {
                write!(f, "{path} is not a {expected}")
            }
            ScfsError::NotEmpty { path } => write!(f, "directory not empty: {path}"),
            ScfsError::PermissionDenied { path } => write!(f, "permission denied: {path}"),
            ScfsError::Locked { path, holder } => {
                write!(f, "{path} is locked by {holder}")
            }
            ScfsError::BadHandle { handle } => write!(f, "bad file handle: {handle}"),
            ScfsError::Storage(e) => write!(f, "storage error: {e}"),
            ScfsError::Coordination(e) => write!(f, "coordination error: {e}"),
            ScfsError::Invalid { reason } => write!(f, "invalid request: {reason}"),
        }
    }
}

impl std::error::Error for ScfsError {}

impl From<StorageError> for ScfsError {
    fn from(e: StorageError) -> Self {
        ScfsError::Storage(e)
    }
}

impl From<CoordError> for ScfsError {
    fn from(e: CoordError) -> Self {
        match e {
            CoordError::LockHeld { key, holder } => ScfsError::Locked { path: key, holder },
            CoordError::AccessDenied { key, .. } => ScfsError::PermissionDenied { path: key },
            other => ScfsError::Coordination(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            ScfsError::not_found("/a/b").to_string(),
            "no such file or directory: /a/b"
        );
        assert!(ScfsError::invalid("oops").to_string().contains("oops"));
        assert!(ScfsError::BadHandle { handle: 7 }.to_string().contains('7'));
    }

    #[test]
    fn coordination_lock_errors_map_to_locked() {
        let e: ScfsError = CoordError::LockHeld {
            key: "/f".into(),
            holder: "s-1".into(),
        }
        .into();
        assert!(matches!(e, ScfsError::Locked { .. }));
        let e: ScfsError = CoordError::not_found("/x").into();
        assert!(matches!(e, ScfsError::Coordination(_)));
    }

    #[test]
    fn storage_errors_wrap() {
        let e: ScfsError = StorageError::not_found("k").into();
        assert!(matches!(e, ScfsError::Storage(_)));
    }
}
