//! The global, refcounted chunk store: cross-file dedup and leak-free GC.
//!
//! Until this refactor chunks were content-addressed *per object id*
//! (`scfs/{id}/blob/{hash}`), so identical content written under two file
//! ids — or by two collaborators — moved and was stored twice, and the
//! garbage collector decided chunk liveness by scanning the versions of one
//! file at a time. Worse, a failed blob deletion aborted the GC loop *after*
//! the version registry had already been pruned: the remaining blobs were
//! permanently orphaned, unreachable by any retry.
//!
//! [`ChunkStore`] fixes both, CFS-style (global chunk addressing, see
//! PAPERS: *CFS: A Distributed File System for Large Scale Container
//! Platforms*):
//!
//! * **One chunk namespace for everything.** Chunks live under a single
//!   content-addressed namespace (`scfs/chunks/{hash}` on the AWS backend,
//!   the `chunks|{hash}` DepSky data units on CoC), owned by a dedicated
//!   chunk-store principal ([`chunk_store_account`]). A chunk is uploaded
//!   only if its **reference count** is zero — identical content across
//!   versions, files *and users* moves once. Manifests stay per-object:
//!   they are the per-file commit point the consistency anchor validates,
//!   and they carry the user-facing ACL.
//! * **Reference counting instead of per-file liveness scans.** Every
//!   committed version holds one reference on each distinct chunk it uses;
//!   pruning a version releases exactly those references. A chunk is
//!   reclaimable iff its count is zero, no matter how many files share it.
//! * **A two-phase release journal makes reclamation idempotent.** Dropping
//!   a version first *appends* "intent to release" entries (phase one: the
//!   registry may forget the version, the journal has not), and only then
//!   are zero-count blobs physically deleted and the entries marked applied
//!   (phase two). A failed delete leaves its entry pending: the next replay
//!   retries it instead of leaking the blob. A chunk re-referenced before
//!   its pending delete runs is *cancelled*, never deleted.
//!
//! Writes are journaled too: before uploading, `write_version` appends
//! *provisional* intents for the chunks (and manifest) it is about to
//! store, and cancels them once the version's references are committed. A
//! write that fails mid-flight — after some chunk uploads, or on the
//! manifest put — therefore leaves its partial blobs covered by pending
//! entries, and the next replay reclaims them instead of orphaning them.
//! Manifest-only copies ([`crate::backend::FileStorage::copy_version`])
//! follow the same protocol: the destination takes one reference per
//! distinct source chunk and commits only a manifest — the agent's
//! `copy_file` moves zero chunks.
//!
//! Journal replay is driven by the agent's garbage collector, which since
//! the completion-token redesign runs as a job on the
//! [`sim_core::background::BackgroundScheduler`]'s GC lane: cycles
//! serialize with one another (the single collector, below) but overlap
//! with uploads and prefetches in virtual time, and each cycle's
//! phase-one releases and phase-two replay share one forked clock.
//!
//! ## Shared ownership
//!
//! Chunk blobs are owned by the chunk-store principal rather than the user
//! who happened to upload them first — the shared-ownership compromise
//! discussed in *Commune: Shared Ownership in an Agnostic Cloud* (PAPERS).
//! Access control remains with the per-object manifests: a reader can only
//! learn a chunk's hash from a manifest its ACL lets it read, so the hash
//! acts as a read capability on the shared namespace. The trade-off (a
//! revoked reader that cached a manifest can still fetch its chunks until
//! they are garbage collected) is inherent to content-addressed dedup.
//!
//! ## Single-collector assumption
//!
//! Refcounts and the journal are state of **one backend instance** — the
//! deployment's single collector. Every agent sharing a cloud must mount
//! through the same backend instance (as `workloads::SharedScfsEnv` and
//! every experiment harness do); an independent instance pointed at the
//! same bucket must not run GC, because it cannot see the references other
//! instances hold, and deleting a global chunk it believes is dead could
//! orphan their files. Distributing the refcount state (a cloud-resident
//! refcount journal, CFS-style) is the natural next step and is tracked in
//! the ROADMAP.

use std::collections::{BTreeMap, BTreeSet, HashSet, VecDeque};

use cloud_store::types::AccountId;
use scfs_crypto::{to_hex, ContentHash};

use crate::invariant::InvariantViolation;

/// Account name of the shared chunk-store principal that owns every blob in
/// the global chunk namespace.
pub const CHUNK_STORE_PRINCIPAL: &str = "scfs-chunkstore";

/// The cloud account under which all global chunk blobs are written, read
/// and deleted.
pub fn chunk_store_account() -> AccountId {
    AccountId::new(CHUNK_STORE_PRINCIPAL)
}

/// What a pending release intent targets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReleaseTarget {
    /// A chunk in the global namespace; deleted only once its refcount is 0.
    Chunk(ContentHash),
    /// A per-object manifest blob (no refcount: manifests are unique to
    /// their `(id, root)` pair once no retained version uses the root).
    Manifest {
        /// Storage id of the object the manifest belongs to.
        id: String,
        /// Root hash the manifest is stored under.
        root: ContentHash,
    },
}

/// One entry of the release journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalEntry {
    /// Monotonic sequence number (append order).
    pub seq: u64,
    /// The blob this entry intends to release.
    pub target: ReleaseTarget,
    /// Failed physical-delete attempts so far; an entry with `attempts > 0`
    /// being attempted again is a *retry* of a previously leaked blob.
    pub attempts: u32,
}

/// Knobs of one journal replay pass ([`crate::config::GcConfig`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalOpts {
    /// Maximum number of pending entries attempted per pass (0 = all).
    pub replay_batch: usize,
    /// Number of most recently applied entries retained for inspection.
    pub keep_applied: usize,
}

impl Default for JournalOpts {
    fn default() -> Self {
        JournalOpts {
            replay_batch: 0,
            keep_applied: 64,
        }
    }
}

/// Accounting of one journal replay pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayReport {
    /// Pending entries attempted this pass.
    pub attempted: u64,
    /// Blobs physically deleted this pass.
    pub deleted: u64,
    /// Entries applied without a delete (the chunk was re-referenced while
    /// the release was pending).
    pub cancelled: u64,
    /// Attempted entries that had already failed at least once — each one is
    /// a blob that the old `?`-aborting collector would have leaked forever.
    pub retried: u64,
    /// Deletions that succeeded on a retry: orphans reclaimed.
    pub reclaimed_after_retry: u64,
    /// Delete attempts that failed this pass; their entries stay pending.
    pub errors: u64,
}

/// The refcounted global chunk store shared by every agent mounting through
/// one backend instance.
#[derive(Debug, Default)]
pub struct ChunkStore {
    /// Live references per chunk: one per (committed version, distinct
    /// chunk) pair. Absent or zero means reclaimable. Ordered so snapshots
    /// ([`ChunkStore::reachable_chunks`]) iterate deterministically.
    refcounts: BTreeMap<ContentHash, u64>,
    /// Release intents not yet applied, oldest first.
    pending: VecDeque<JournalEntry>,
    /// Most recently applied entries (bounded by `JournalOpts::keep_applied`).
    applied: VecDeque<JournalEntry>,
    next_seq: u64,
    /// Times a release dropped a reference that was not held. The counts
    /// themselves saturate at zero (an underflow must not corrupt
    /// neighbouring chunks' counts), so this counter is the only trace a
    /// double-release leaves; [`ChunkStore::check_invariants`] reports it.
    underflows: u64,
}

impl ChunkStore {
    /// Whether the global namespace holds a live (referenced) copy of `hash`.
    pub fn is_stored(&self, hash: &ContentHash) -> bool {
        self.refcounts.get(hash).is_some_and(|rc| *rc > 0)
    }

    /// Current reference count of `hash` (0 if unknown).
    pub fn refcount(&self, hash: &ContentHash) -> u64 {
        self.refcounts.get(hash).copied().unwrap_or(0)
    }

    /// Number of distinct chunks with at least one live reference.
    pub fn stored_chunks(&self) -> usize {
        self.refcounts.values().filter(|rc| **rc > 0).count()
    }

    /// Number of pending release intents.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// The pending release intents, oldest first.
    pub fn pending_entries(&self) -> impl Iterator<Item = &JournalEntry> {
        self.pending.iter()
    }

    /// The retained applied entries, oldest first.
    pub fn applied_entries(&self) -> impl Iterator<Item = &JournalEntry> {
        self.applied.iter()
    }

    /// Takes one reference on each chunk of a newly committed version.
    /// `chunks` must be the version's *distinct* chunk set — the exact set a
    /// later [`ChunkStore::release_version`] of the same version passes back.
    pub fn retain_version(&mut self, chunks: &BTreeSet<ContentHash>) {
        for chunk in chunks {
            *self.refcounts.entry(*chunk).or_insert(0) += 1;
        }
    }

    /// Phase one of releasing a dropped version: drops the version's
    /// references and appends an intent entry for each chunk whose count
    /// thereby reached zero (a chunk other versions still hold needs no
    /// entry — it could only ever be cancelled at replay). The physical
    /// deletes happen in replay (phase two), so a crash or delete failure
    /// between the phases leaves retryable journal entries, never orphans.
    pub fn release_version(&mut self, chunks: impl IntoIterator<Item = ContentHash>) {
        for chunk in chunks {
            let rc = self.refcounts.entry(chunk).or_insert(0);
            if *rc == 0 {
                self.underflows += 1;
            }
            *rc = rc.saturating_sub(1);
            if *rc == 0 {
                self.append(ReleaseTarget::Chunk(chunk));
            }
        }
    }

    /// Journals intents for chunks a write is *about to upload*: if the
    /// write fails before it commits its references, replay finds the
    /// uploaded blobs at refcount zero and reclaims them instead of
    /// orphaning them. A write that commits cancels these entries via
    /// [`ChunkStore::cancel_chunk_releases`] (and a surviving entry would be
    /// cancelled at replay anyway, since the committed chunks hold
    /// references).
    pub fn journal_provisional_uploads(&mut self, chunks: impl IntoIterator<Item = ContentHash>) {
        for chunk in chunks {
            self.append(ReleaseTarget::Chunk(chunk));
        }
    }

    /// Appends the release intent for a manifest no retained version of `id`
    /// stores its root under. Also used provisionally before a manifest
    /// upload — replay checks registry liveness before deleting, so a
    /// committed manifest is never destroyed by its own provisional entry.
    pub fn release_manifest(&mut self, id: &str, root: ContentHash) {
        self.append(ReleaseTarget::Manifest {
            id: id.to_string(),
            root,
        });
    }

    /// Cancels any pending release of `(id, root)` — called when a version
    /// with that manifest is (re)committed, so a pending delete from an
    /// earlier prune cannot destroy the recreated blob.
    pub fn cancel_manifest_release(&mut self, id: &str, root: &ContentHash) {
        self.cancel_where(|target| {
            matches!(
                target,
                ReleaseTarget::Manifest { id: eid, root: eroot }
                    if eid == id && eroot == root
            )
        });
    }

    /// Cancels every pending chunk release whose hash is in `live` — called
    /// when a version commits, clearing its provisional upload intents and
    /// any stale entry for a chunk the commit just re-referenced.
    pub fn cancel_chunk_releases(&mut self, live: &BTreeSet<ContentHash>) {
        self.cancel_where(
            |target| matches!(target, ReleaseTarget::Chunk(hash) if live.contains(hash)),
        );
    }

    /// Drops the pending entries matching `cancelled` outright: commit-time
    /// cancellations are pure bookkeeping, and parking them in the applied
    /// history would grow it unboundedly between replays (compaction only
    /// runs there) — one write's worth of provisional entries per commit.
    fn cancel_where(&mut self, cancelled: impl Fn(&ReleaseTarget) -> bool) {
        self.pending.retain(|entry| !cancelled(&entry.target));
    }

    fn append(&mut self, target: ReleaseTarget) {
        self.pending.push_back(JournalEntry {
            seq: self.next_seq,
            target,
            attempts: 0,
        });
        self.next_seq += 1;
    }

    /// Snapshot of up to `batch` pending entries (0 = all), oldest first.
    pub fn pending_snapshot(&self, batch: usize) -> Vec<JournalEntry> {
        let take = if batch == 0 {
            self.pending.len()
        } else {
            batch.min(self.pending.len())
        };
        self.pending.iter().take(take).cloned().collect()
    }

    /// Decides what entry `seq` requires *now*: `Some(target)` if the blob
    /// must be deleted, `None` if the entry was applied without a delete
    /// (the chunk has been re-referenced in the meantime).
    pub fn decide(&mut self, seq: u64) -> Option<ReleaseTarget> {
        let entry = self.pending.iter().find(|e| e.seq == seq)?;
        match &entry.target {
            ReleaseTarget::Chunk(hash) if self.refcount(hash) > 0 => {
                self.mark_applied(seq);
                None
            }
            target => Some(target.clone()),
        }
    }

    /// Marks entry `seq` applied (the blob is gone, or provably not needed).
    pub fn mark_applied(&mut self, seq: u64) {
        let Some(pos) = self.pending.iter().position(|e| e.seq == seq) else {
            return;
        };
        if let Some(entry) = self.pending.remove(pos) {
            if let ReleaseTarget::Chunk(hash) = &entry.target {
                if self.refcount(hash) == 0 {
                    self.refcounts.remove(hash);
                }
            }
            self.applied.push_back(entry);
        }
    }

    /// Records a failed delete attempt of entry `seq`: the entry stays
    /// pending but rotates to the back of the queue, so a persistently
    /// failing blob cannot monopolize a bounded replay batch and starve the
    /// entries behind it.
    pub fn mark_failed(&mut self, seq: u64) {
        let Some(pos) = self.pending.iter().position(|e| e.seq == seq) else {
            return;
        };
        if let Some(mut entry) = self.pending.remove(pos) {
            entry.attempts += 1;
            self.pending.push_back(entry);
        }
    }

    /// Trims the applied-entry history to `keep` entries.
    pub fn compact(&mut self, keep: usize) {
        while self.applied.len() > keep {
            self.applied.pop_front();
        }
    }

    /// Distinct chunk hashes with a live reference or a pending release —
    /// exactly the chunk blobs that may legitimately exist in the cloud.
    pub fn reachable_chunks(&self) -> BTreeSet<ContentHash> {
        let mut set: BTreeSet<ContentHash> = self
            .refcounts
            .iter()
            .filter(|(_, rc)| **rc > 0)
            .map(|(h, _)| *h)
            .collect();
        for entry in &self.pending {
            if let ReleaseTarget::Chunk(hash) = &entry.target {
                set.insert(*hash);
            }
        }
        set
    }

    /// `(id, root)` pairs of manifests with a pending release.
    pub fn pending_manifests(&self) -> BTreeSet<(String, ContentHash)> {
        self.pending
            .iter()
            .filter_map(|e| match &e.target {
                ReleaseTarget::Manifest { id, root } => Some((id.clone(), *root)),
                ReleaseTarget::Chunk(_) => None,
            })
            .collect()
    }

    /// Times a release dropped a reference that was not held (the counts
    /// themselves saturate, so this is the only observable trace). Must be
    /// zero: a nonzero value means some schedule double-released a version
    /// or released one that never committed.
    pub fn refcount_underflows(&self) -> u64 {
        self.underflows
    }

    /// Appends any violated chunkstore invariants to `out`: refcounts never
    /// went negative (no release without a matching retain), and journal
    /// sequence numbers are unique and below the allocation cursor.
    pub fn check_invariants(&self, out: &mut Vec<InvariantViolation>) {
        if self.underflows > 0 {
            out.push(InvariantViolation::new(
                "chunkstore.refcount-underflow",
                format!("{} release(s) without a matching retain", self.underflows),
            ));
        }
        let mut seen = BTreeSet::new();
        for entry in self.pending.iter().chain(self.applied.iter()) {
            if entry.seq >= self.next_seq {
                out.push(InvariantViolation::new(
                    "chunkstore.journal-seq-range",
                    format!("entry seq {} >= next_seq {}", entry.seq, self.next_seq),
                ));
            }
            if !seen.insert(entry.seq) {
                out.push(InvariantViolation::new(
                    "chunkstore.journal-seq-duplicate",
                    format!("journal seq {} appears twice", entry.seq),
                ));
            }
        }
    }
}

/// The set of blobs that may legitimately exist in the cloud(s) for one
/// backend instance: every chunk reachable from a live reference or pending
/// journal entry, and every manifest a retained version or pending entry
/// points at. Anything else under the SCFS key space is an orphan — the
/// leak class the release journal exists to prevent.
///
/// Built by `SingleCloudStorage::blob_audit` / `CloudOfCloudsStorage::
/// blob_audit`; tests feed it the raw key listing of a `SimulatedCloud`
/// (`stored_keys`) and assert [`BlobAudit::orphans`] is empty.
#[derive(Debug, Clone)]
pub struct BlobAudit {
    chunk_hex: HashSet<String>,
    manifest_hex: HashSet<(String, String)>,
}

/// How the audited cloud keys encode SCFS blobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyStyle {
    /// Single-cloud keys: `scfs/chunks/{hex}` and `scfs/{id}/manifest/{hex}`.
    Aws,
    /// DepSky keys: `depsky/{unit}/...` with units `chunks|{hex}` (global
    /// chunks) and `{id}|{hex}` (manifests).
    DepSky,
}

impl BlobAudit {
    /// Builds an audit from the reachable chunk hashes and live-or-pending
    /// manifests of a backend.
    pub fn new(
        chunks: impl IntoIterator<Item = ContentHash>,
        manifests: impl IntoIterator<Item = (String, ContentHash)>,
    ) -> Self {
        BlobAudit {
            chunk_hex: chunks.into_iter().map(|h| to_hex(&h)).collect(),
            manifest_hex: manifests
                .into_iter()
                .map(|(id, h)| (id, to_hex(&h)))
                .collect(),
        }
    }

    /// Whether a stored cloud key is reachable from a live manifest, a live
    /// chunk reference or a pending journal entry. Keys outside the SCFS
    /// namespaces are ignored (treated as reachable).
    pub fn permits(&self, style: KeyStyle, key: &str) -> bool {
        match style {
            KeyStyle::Aws => {
                let Some(rest) = key.strip_prefix("scfs/") else {
                    return true;
                };
                if let Some(hex) = rest.strip_prefix("chunks/") {
                    return self.chunk_hex.contains(hex);
                }
                match rest.split_once("/manifest/") {
                    Some((id, hex)) => self
                        .manifest_hex
                        .contains(&(id.to_string(), hex.to_string())),
                    None => false,
                }
            }
            KeyStyle::DepSky => {
                let Some(rest) = key.strip_prefix("depsky/") else {
                    return true;
                };
                let unit = rest.split('/').next().unwrap_or(rest);
                match unit.split_once('|') {
                    Some(("chunks", hex)) => self.chunk_hex.contains(hex),
                    Some((id, hex)) => self
                        .manifest_hex
                        .contains(&(id.to_string(), hex.to_string())),
                    None => false,
                }
            }
        }
    }

    /// The stored keys *not* reachable: the orphans.
    pub fn orphans(&self, style: KeyStyle, keys: impl IntoIterator<Item = String>) -> Vec<String> {
        keys.into_iter()
            .filter(|k| !self.permits(style, k))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scfs_crypto::sha256;

    fn h(tag: u8) -> ContentHash {
        sha256(&[tag])
    }

    #[test]
    fn retain_release_refcounting() {
        let mut store = ChunkStore::default();
        let shared: BTreeSet<ContentHash> = [h(1), h(2)].into_iter().collect();
        store.retain_version(&shared);
        store.retain_version(&shared);
        assert_eq!(store.refcount(&h(1)), 2);
        assert!(store.is_stored(&h(1)));
        store.release_version(shared.iter().copied());
        assert_eq!(store.refcount(&h(1)), 1);
        assert!(store.is_stored(&h(1)));
        assert_eq!(
            store.pending_len(),
            0,
            "a release that leaves references needs no intent — it could only be cancelled"
        );
        store.release_version(shared.iter().copied());
        assert_eq!(store.refcount(&h(1)), 0);
        assert_eq!(store.pending_len(), 2, "zero-count chunks get intents");
    }

    #[test]
    fn underflow_is_counted_and_reported() {
        let mut store = ChunkStore::default();
        let set: BTreeSet<ContentHash> = [h(1)].into_iter().collect();
        store.retain_version(&set);
        let mut violations = Vec::new();
        store.check_invariants(&mut violations);
        assert!(violations.is_empty());
        // Releasing twice against one retain is a double-release: the count
        // saturates (no corruption) but the invariant check reports it.
        store.release_version(set.iter().copied());
        store.release_version(set.iter().copied());
        assert_eq!(store.refcount(&h(1)), 0);
        assert_eq!(store.refcount_underflows(), 1);
        store.check_invariants(&mut violations);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].name, "chunkstore.refcount-underflow");
    }

    #[test]
    fn provisional_upload_intents_cover_failed_writes() {
        let mut store = ChunkStore::default();
        let set: BTreeSet<ContentHash> = [h(4), h(5)].into_iter().collect();
        // A write journals its uploads first...
        store.journal_provisional_uploads(set.iter().copied());
        assert_eq!(store.pending_len(), 2);
        // ...and if it never commits, the entries demand deletion (rc 0).
        let seqs: Vec<u64> = store.pending_entries().map(|e| e.seq).collect();
        for seq in &seqs {
            assert!(
                store.decide(*seq).is_some(),
                "uncommitted upload is garbage"
            );
        }
        // A committed write cancels its provisional entries instead.
        store.retain_version(&set);
        store.cancel_chunk_releases(&set);
        assert_eq!(store.pending_len(), 0);
        assert!(store.is_stored(&h(4)));
    }

    #[test]
    fn failed_entries_rotate_to_the_back() {
        let mut store = ChunkStore::default();
        store.release_manifest("f", h(1));
        store.release_manifest("f", h(2));
        let first = store.pending_entries().next().unwrap().seq;
        store.mark_failed(first);
        let order: Vec<u64> = store.pending_entries().map(|e| e.seq).collect();
        assert_eq!(
            order,
            vec![first + 1, first],
            "a failing entry must not block the queue head"
        );
        assert_eq!(store.pending_entries().last().unwrap().attempts, 1);
    }

    #[test]
    fn decide_cancels_rereferenced_chunks() {
        let mut store = ChunkStore::default();
        let set: BTreeSet<ContentHash> = [h(1)].into_iter().collect();
        store.retain_version(&set);
        store.release_version(set.iter().copied());
        assert_eq!(store.refcount(&h(1)), 0);
        // A new version re-references the chunk before the delete ran.
        store.retain_version(&set);
        let seq = store.pending_entries().next().unwrap().seq;
        assert_eq!(store.decide(seq), None, "re-referenced chunk is cancelled");
        assert_eq!(store.pending_len(), 0);
        assert!(store.is_stored(&h(1)));
    }

    #[test]
    fn failed_deletes_stay_pending_and_count_attempts() {
        let mut store = ChunkStore::default();
        let set: BTreeSet<ContentHash> = [h(9)].into_iter().collect();
        store.retain_version(&set);
        store.release_version(set.iter().copied());
        let seq = store.pending_entries().next().unwrap().seq;
        assert!(matches!(
            store.decide(seq),
            Some(ReleaseTarget::Chunk(hash)) if hash == h(9)
        ));
        store.mark_failed(seq);
        let entry = store.pending_entries().next().unwrap();
        assert_eq!(entry.attempts, 1, "failure recorded, entry still pending");
        // The retry applies.
        assert!(store.decide(seq).is_some());
        store.mark_applied(seq);
        assert_eq!(store.pending_len(), 0);
        assert_eq!(store.refcount(&h(9)), 0);
    }

    #[test]
    fn manifest_release_and_cancel() {
        let mut store = ChunkStore::default();
        store.release_manifest("f1", h(3));
        store.release_manifest("f2", h(3));
        assert_eq!(store.pending_len(), 2);
        store.cancel_manifest_release("f1", &h(3));
        assert_eq!(store.pending_len(), 1);
        let left = store.pending_entries().next().unwrap();
        assert!(matches!(
            &left.target,
            ReleaseTarget::Manifest { id, .. } if id == "f2"
        ));
    }

    #[test]
    fn compact_bounds_applied_history() {
        let mut store = ChunkStore::default();
        for i in 0..10u8 {
            store.release_manifest("f", h(i));
        }
        let seqs: Vec<u64> = store.pending_entries().map(|e| e.seq).collect();
        for seq in seqs {
            store.mark_applied(seq);
        }
        store.compact(3);
        assert_eq!(store.applied_entries().count(), 3);
        assert_eq!(store.pending_len(), 0);
    }

    #[test]
    fn reachable_chunks_include_pending_releases() {
        let mut store = ChunkStore::default();
        let live: BTreeSet<ContentHash> = [h(1)].into_iter().collect();
        let dead: BTreeSet<ContentHash> = [h(2)].into_iter().collect();
        store.retain_version(&live);
        store.retain_version(&dead);
        store.release_version(dead.iter().copied());
        let reachable = store.reachable_chunks();
        assert!(reachable.contains(&h(1)), "live chunk is reachable");
        assert!(reachable.contains(&h(2)), "pending release is reachable");
        assert_eq!(reachable.len(), 2);
    }

    #[test]
    fn audit_flags_unknown_scfs_keys_only() {
        let audit = BlobAudit::new([h(1)], [("alice-f1".to_string(), h(2))]);
        let keys = vec![
            format!("scfs/chunks/{}", to_hex(&h(1))),
            format!("scfs/alice-f1/manifest/{}", to_hex(&h(2))),
            format!("scfs/chunks/{}", to_hex(&h(7))),
            "unrelated/key".to_string(),
        ];
        let orphans = audit.orphans(KeyStyle::Aws, keys);
        assert_eq!(orphans, vec![format!("scfs/chunks/{}", to_hex(&h(7)))]);
    }

    #[test]
    fn audit_parses_depsky_units() {
        let audit = BlobAudit::new([h(1)], [("alice-f1".to_string(), h(2))]);
        let ok_chunk = format!("depsky/chunks|{}/v1/block0", to_hex(&h(1)));
        let ok_manifest = format!("depsky/alice-f1|{}/metadata", to_hex(&h(2)));
        let orphan = format!("depsky/chunks|{}/v1/block2", to_hex(&h(9)));
        assert!(audit.permits(KeyStyle::DepSky, &ok_chunk));
        assert!(audit.permits(KeyStyle::DepSky, &ok_manifest));
        assert!(!audit.permits(KeyStyle::DepSky, &orphan));
    }

    #[test]
    fn chunk_store_principal_is_stable() {
        assert_eq!(chunk_store_account().as_str(), CHUNK_STORE_PRINCIPAL);
    }
}
