//! The agent's local metadata service (paper §2.5.1, "Metadata service").
//!
//! Every file-system object is represented by a metadata tuple. Shared
//! objects live in the coordination service (the consistency anchor); private
//! objects live in the agent's [`PrivateNameSpace`]. A small, short-lived
//! metadata cache absorbs the bursts of `stat`-like calls that applications
//! issue around every high-level action (opening a document in an editor can
//! trigger more than five `stat`s), which is the knob explored in
//! Figure 10(a).

use std::collections::BTreeMap;
use std::sync::Arc;

use cloud_store::store::OpCtx;
use cloud_store::types::{AccountId, Acl};
use coord::service::CoordinationService;
use sim_core::time::{SimDuration, SimInstant};

use crate::error::ScfsError;
use crate::pns::PrivateNameSpace;
use crate::types::{parent_of, FileMetadata};

/// Counters describing how the metadata service resolved its lookups.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetadataStats {
    /// Lookups answered from the short-lived metadata cache.
    pub cache_hits: u64,
    /// Lookups answered by the private name space (no remote access).
    pub pns_hits: u64,
    /// Lookups that had to query the coordination service.
    pub coordination_reads: u64,
    /// Updates sent to the coordination service.
    pub coordination_writes: u64,
}

/// The metadata service of one SCFS agent.
pub struct MetadataService {
    coord: Option<Arc<dyn CoordinationService>>,
    pns: Option<PrivateNameSpace>,
    user: AccountId,
    /// Ordered so expiry sweeps ([`MetadataService::rename`]'s prefix
    /// retain) visit entries in a run-independent order.
    cache: BTreeMap<String, (FileMetadata, SimInstant)>,
    cache_expiry: SimDuration,
    shared_prefixes: Vec<String>,
    stats: MetadataStats,
}

impl std::fmt::Debug for MetadataService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetadataService")
            .field("user", &self.user)
            .field("pns", &self.pns.as_ref().map(|p| p.len()))
            .field("cache_entries", &self.cache.len())
            .finish()
    }
}

impl MetadataService {
    /// Creates a metadata service.
    ///
    /// * `coord == None` — non-sharing mode: everything lives in the PNS.
    /// * `use_pns == false` — every object gets its own coordination tuple
    ///   (the worst-case configuration used in the headline experiments).
    pub fn new(
        coord: Option<Arc<dyn CoordinationService>>,
        use_pns: bool,
        user: AccountId,
        cache_expiry: SimDuration,
    ) -> Self {
        let pns = if use_pns || coord.is_none() {
            Some(PrivateNameSpace::new())
        } else {
            None
        };
        MetadataService {
            coord,
            pns,
            user,
            cache: BTreeMap::new(),
            cache_expiry,
            shared_prefixes: vec!["/shared".to_string()],
            stats: MetadataStats::default(),
        }
    }

    /// Overrides the path prefixes treated as shared when PNSs are enabled.
    pub fn set_shared_prefixes(&mut self, prefixes: Vec<String>) {
        self.shared_prefixes = prefixes;
    }

    /// Access to the lookup counters.
    pub fn stats(&self) -> MetadataStats {
        self.stats
    }

    /// Access to the private name space, if one is in use.
    pub fn pns(&self) -> Option<&PrivateNameSpace> {
        self.pns.as_ref()
    }

    fn coord_key(path: &str) -> String {
        format!("/scfs/meta{path}")
    }

    /// Whether `path`/`metadata` is handled by the PNS (true) or by the
    /// coordination service (false).
    pub fn is_private(&self, path: &str, metadata: Option<&FileMetadata>) -> bool {
        let Some(_) = self.pns else {
            return false;
        };
        if self.coord.is_none() {
            return true;
        }
        if self
            .shared_prefixes
            .iter()
            .any(|p| path.starts_with(p.as_str()))
        {
            return false;
        }
        match metadata {
            Some(md) => !md.is_shared(),
            None => true,
        }
    }

    fn cache_get(&mut self, path: &str, now: SimInstant) -> Option<FileMetadata> {
        match self.cache.get(path) {
            Some((md, cached_at)) => {
                if now.duration_since(*cached_at) < self.cache_expiry {
                    self.stats.cache_hits += 1;
                    Some(md.clone())
                } else {
                    None
                }
            }
            None => None,
        }
    }

    fn cache_put(&mut self, md: &FileMetadata, now: SimInstant) {
        if self.cache_expiry > SimDuration::ZERO {
            self.cache.insert(md.path.clone(), (md.clone(), now));
        }
    }

    fn cache_invalidate(&mut self, path: &str) {
        self.cache.remove(path);
    }

    /// Reads the metadata of `path`.
    pub fn get(&mut self, ctx: &mut OpCtx<'_>, path: &str) -> Result<FileMetadata, ScfsError> {
        let now = ctx.clock.now();
        if let Some(md) = self.cache_get(path, now) {
            return Ok(md);
        }
        // Private files are resolved against the PNS without touching the
        // coordination service.
        if let Some(pns) = &self.pns {
            if let Some(md) = pns.get(path) {
                if self.is_private(path, Some(md)) {
                    self.stats.pns_hits += 1;
                    let md = md.clone();
                    self.cache_put(&md, now);
                    return Ok(md);
                }
            }
        }
        // A path that routes to the private name space and is absent from it
        // does not exist as far as this user is concerned; consulting the
        // coordination service would defeat the whole point of PNSs.
        if self.pns.is_some() && self.is_private(path, None) {
            return Err(ScfsError::not_found(path));
        }
        let Some(coord) = &self.coord else {
            return Err(ScfsError::not_found(path));
        };
        self.stats.coordination_reads += 1;
        let entry = coord
            .get(ctx, &Self::coord_key(path))
            .map_err(|e| match e {
                coord::error::CoordError::NotFound { .. } => ScfsError::not_found(path),
                other => other.into(),
            })?;
        let mut md = FileMetadata::decode(&entry.value)
            .map_err(|e| ScfsError::invalid(format!("corrupt metadata tuple: {e}")))?;
        // After a rename the tuple is stored under the new key but its `path`
        // field still carries the old name; the key is authoritative.
        md.path = path.to_string();
        let now = ctx.clock.now();
        self.cache_put(&md, now);
        Ok(md)
    }

    /// Creates the metadata of a new object (exclusive).
    pub fn create(&mut self, ctx: &mut OpCtx<'_>, metadata: FileMetadata) -> Result<(), ScfsError> {
        let path = metadata.path.clone();
        if self.is_private(&path, Some(&metadata)) {
            let Some(pns) = self.pns.as_mut() else {
                return Err(ScfsError::invalid(
                    "private path routed to a service with no private name space",
                ));
            };
            if pns.get(&path).is_some() {
                return Err(ScfsError::AlreadyExists { path });
            }
            pns.insert(metadata.clone());
        } else {
            let coord = self.coord.as_ref().ok_or_else(|| {
                ScfsError::invalid("shared object requires a coordination service")
            })?;
            self.stats.coordination_writes += 1;
            coord
                .cas(ctx, &Self::coord_key(&path), None, metadata.encode())
                .map_err(|e| match e {
                    coord::error::CoordError::AlreadyExists { .. } => {
                        ScfsError::AlreadyExists { path: path.clone() }
                    }
                    other => other.into(),
                })?;
        }
        let now = ctx.clock.now();
        self.cache_put(&metadata, now);
        Ok(())
    }

    /// Updates the metadata of an existing object.
    pub fn update(&mut self, ctx: &mut OpCtx<'_>, metadata: FileMetadata) -> Result<(), ScfsError> {
        let path = metadata.path.clone();
        if self.is_private(&path, Some(&metadata)) {
            let Some(pns) = self.pns.as_mut() else {
                return Err(ScfsError::invalid(
                    "private path routed to a service with no private name space",
                ));
            };
            pns.insert(metadata.clone());
        } else {
            let coord = self.coord.as_ref().ok_or_else(|| {
                ScfsError::invalid("shared object requires a coordination service")
            })?;
            self.stats.coordination_writes += 1;
            coord.put(ctx, &Self::coord_key(&path), metadata.encode())?;
        }
        let now = ctx.clock.now();
        self.cache_put(&metadata, now);
        Ok(())
    }

    /// Updates only the local caches (used by the non-blocking close path,
    /// which defers the coordination-service update to the background upload
    /// but must let this client observe its own write immediately).
    pub fn update_local(&mut self, metadata: FileMetadata, now: SimInstant) {
        if self.is_private(&metadata.path, Some(&metadata)) {
            if let Some(pns) = self.pns.as_mut() {
                pns.insert(metadata.clone());
            }
        }
        self.cache.insert(metadata.path.clone(), (metadata, now));
    }

    /// Deletes the metadata of `path`.
    pub fn delete(&mut self, ctx: &mut OpCtx<'_>, path: &str) -> Result<(), ScfsError> {
        self.cache_invalidate(path);
        if let Some(pns) = self.pns.as_mut() {
            if pns.remove(path).is_some() {
                return Ok(());
            }
        }
        let Some(coord) = &self.coord else {
            return Err(ScfsError::not_found(path));
        };
        self.stats.coordination_writes += 1;
        coord
            .delete(ctx, &Self::coord_key(path))
            .map_err(|e| match e {
                coord::error::CoordError::NotFound { .. } => ScfsError::not_found(path),
                other => other.into(),
            })
    }

    /// Lists the direct children of directory `path`.
    pub fn list_children(
        &mut self,
        ctx: &mut OpCtx<'_>,
        path: &str,
    ) -> Result<Vec<String>, ScfsError> {
        let mut children: Vec<String> = Vec::new();
        if let Some(pns) = &self.pns {
            children.extend(pns.children_of(path));
        }
        if let Some(coord) = &self.coord {
            self.stats.coordination_reads += 1;
            let prefix = if path == "/" {
                Self::coord_key("/")
            } else {
                format!("{}/", Self::coord_key(path))
            };
            let keys = coord.list(ctx, &prefix)?;
            let meta_prefix = Self::coord_key("");
            for key in keys {
                let child_path = key.trim_start_matches(&meta_prefix).to_string();
                // Only direct children.
                let rel = child_path.trim_start_matches(path).trim_start_matches('/');
                if !rel.is_empty() && !rel.contains('/') {
                    children.push(child_path);
                }
            }
        }
        children.sort();
        children.dedup();
        Ok(children)
    }

    /// Renames `from` (and everything under it) to `to`.
    pub fn rename(
        &mut self,
        ctx: &mut OpCtx<'_>,
        from: &str,
        to: &str,
    ) -> Result<usize, ScfsError> {
        self.cache.retain(|k, _| !k.starts_with(from));
        let mut moved = 0usize;
        if let Some(pns) = self.pns.as_mut() {
            moved += pns.rename_prefix(from, to);
        }
        if let Some(coord) = &self.coord {
            self.stats.coordination_writes += 1;
            moved += coord.rename_prefix(ctx, &Self::coord_key(from), &Self::coord_key(to))?;
        }
        if moved == 0 {
            return Err(ScfsError::not_found(from));
        }
        Ok(moved)
    }

    /// Applies an ACL change: updates the metadata tuple, moves it between
    /// PNS and coordination service if its sharing status changed, and sets
    /// the coordination-service entry ACL so the grantee can actually read it.
    pub fn set_acl(
        &mut self,
        ctx: &mut OpCtx<'_>,
        mut metadata: FileMetadata,
        acl: Acl,
    ) -> Result<FileMetadata, ScfsError> {
        let was_private = self.is_private(&metadata.path, Some(&metadata));
        metadata.acl = acl.clone();
        let now_private = self.is_private(&metadata.path, Some(&metadata));

        if was_private && !now_private {
            // The file became shared: move its metadata from the PNS to a
            // coordination-service tuple (paper §2.7).
            if let Some(pns) = self.pns.as_mut() {
                pns.remove(&metadata.path);
            }
            let coord = self.coord.as_ref().ok_or_else(|| {
                ScfsError::invalid("sharing a file requires a coordination service")
            })?;
            self.stats.coordination_writes += 1;
            coord.put(ctx, &Self::coord_key(&metadata.path), metadata.encode())?;
            coord.set_acl(ctx, &Self::coord_key(&metadata.path), acl)?;
        } else if !now_private {
            let coord = self.coord.as_ref().ok_or_else(|| {
                ScfsError::invalid("shared object requires a coordination service")
            })?;
            self.stats.coordination_writes += 1;
            coord.put(ctx, &Self::coord_key(&metadata.path), metadata.encode())?;
            coord.set_acl(ctx, &Self::coord_key(&metadata.path), acl)?;
        } else {
            // Still private (e.g. all grants removed): keep it in the PNS.
            if let Some(pns) = self.pns.as_mut() {
                pns.insert(metadata.clone());
            }
        }
        let now = ctx.clock.now();
        self.cache_put(&metadata, now);
        Ok(metadata)
    }

    /// Whether `path`'s parent directory exists (the root always does).
    pub fn parent_exists(&mut self, ctx: &mut OpCtx<'_>, path: &str) -> bool {
        let parent = parent_of(path);
        if parent == "/" {
            return true;
        }
        self.get(ctx, &parent).is_ok()
    }

    /// All private files known to this agent (used by the garbage collector
    /// and the PNS persistence path).
    pub fn private_files(&self) -> Vec<FileMetadata> {
        self.pns
            .as_ref()
            .map(|p| p.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// The user this service acts for.
    pub fn user(&self) -> &AccountId {
        &self.user
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coord::replication::ReplicatedCoordinator;
    use sim_core::time::Clock;

    fn coord() -> Arc<dyn CoordinationService> {
        Arc::new(ReplicatedCoordinator::test())
    }

    fn md(path: &str) -> FileMetadata {
        FileMetadata::new_file(
            path,
            AccountId::new("alice"),
            format!("id{path}"),
            SimInstant::EPOCH,
        )
    }

    #[test]
    fn shared_metadata_goes_to_coordination_service() {
        let c = coord();
        let mut svc =
            MetadataService::new(Some(c.clone()), false, "alice".into(), SimDuration::ZERO);
        let mut clock = Clock::new();
        let mut ctx = OpCtx::new(&mut clock, "alice".into());
        svc.create(&mut ctx, md("/docs/a")).unwrap();
        assert_eq!(svc.get(&mut ctx, "/docs/a").unwrap().path, "/docs/a");
        assert!(
            c.access_count() >= 2,
            "coordination service should have been used"
        );
        assert!(svc.stats().coordination_reads >= 1);
    }

    #[test]
    fn private_metadata_stays_in_the_pns() {
        let c = coord();
        let mut svc =
            MetadataService::new(Some(c.clone()), true, "alice".into(), SimDuration::ZERO);
        let mut clock = Clock::new();
        let mut ctx = OpCtx::new(&mut clock, "alice".into());
        svc.create(&mut ctx, md("/docs/private")).unwrap();
        assert!(svc.get(&mut ctx, "/docs/private").is_ok());
        assert_eq!(
            c.access_count(),
            0,
            "private files must not touch the coordination service"
        );
        assert_eq!(svc.stats().pns_hits, 1);
        // Files under the shared prefix still use the coordination service.
        svc.create(&mut ctx, md("/shared/group-report")).unwrap();
        assert!(c.access_count() > 0);
    }

    #[test]
    fn metadata_cache_absorbs_repeated_stats() {
        let c = coord();
        let mut svc = MetadataService::new(
            Some(c.clone()),
            false,
            "alice".into(),
            SimDuration::from_millis(500),
        );
        let mut clock = Clock::new();
        let mut ctx = OpCtx::new(&mut clock, "alice".into());
        svc.create(&mut ctx, md("/f")).unwrap();
        let before = c.access_count();
        // A burst of stats within 500 ms hits the cache.
        for _ in 0..5 {
            svc.get(&mut ctx, "/f").unwrap();
        }
        assert_eq!(c.access_count(), before);
        assert!(svc.stats().cache_hits >= 5);
        // After the expiry the next stat goes to the coordination service again.
        clock.advance(SimDuration::from_secs(1));
        let mut ctx = OpCtx::new(&mut clock, "alice".into());
        svc.get(&mut ctx, "/f").unwrap();
        assert_eq!(c.access_count(), before + 1);
    }

    #[test]
    fn exclusive_create_detects_duplicates() {
        let mut svc = MetadataService::new(Some(coord()), false, "alice".into(), SimDuration::ZERO);
        let mut clock = Clock::new();
        let mut ctx = OpCtx::new(&mut clock, "alice".into());
        svc.create(&mut ctx, md("/f")).unwrap();
        assert!(matches!(
            svc.create(&mut ctx, md("/f")),
            Err(ScfsError::AlreadyExists { .. })
        ));
    }

    #[test]
    fn list_children_merges_pns_and_coordination() {
        let mut svc = MetadataService::new(Some(coord()), true, "alice".into(), SimDuration::ZERO);
        let mut clock = Clock::new();
        let mut ctx = OpCtx::new(&mut clock, "alice".into());
        svc.create(&mut ctx, md("/docs/private1")).unwrap();
        svc.create(&mut ctx, md("/shared/public1")).unwrap();
        let docs = svc.list_children(&mut ctx, "/docs").unwrap();
        assert_eq!(docs, vec!["/docs/private1".to_string()]);
        let shared = svc.list_children(&mut ctx, "/shared").unwrap();
        assert_eq!(shared, vec!["/shared/public1".to_string()]);
    }

    #[test]
    fn rename_and_delete() {
        let mut svc = MetadataService::new(Some(coord()), false, "alice".into(), SimDuration::ZERO);
        let mut clock = Clock::new();
        let mut ctx = OpCtx::new(&mut clock, "alice".into());
        svc.create(&mut ctx, md("/old/f")).unwrap();
        assert_eq!(svc.rename(&mut ctx, "/old", "/new").unwrap(), 1);
        assert!(svc.get(&mut ctx, "/new/f").is_ok());
        assert!(svc.get(&mut ctx, "/old/f").is_err());
        svc.delete(&mut ctx, "/new/f").unwrap();
        assert!(svc.get(&mut ctx, "/new/f").is_err());
        assert!(matches!(
            svc.rename(&mut ctx, "/nonexistent", "/x"),
            Err(ScfsError::NotFound { .. })
        ));
    }

    #[test]
    fn setfacl_moves_private_file_to_coordination_service() {
        use cloud_store::types::Permission;
        let c = coord();
        let mut svc =
            MetadataService::new(Some(c.clone()), true, "alice".into(), SimDuration::ZERO);
        let mut clock = Clock::new();
        let mut ctx = OpCtx::new(&mut clock, "alice".into());
        svc.create(&mut ctx, md("/docs/report")).unwrap();
        assert_eq!(c.access_count(), 0);
        let metadata = svc.get(&mut ctx, "/docs/report").unwrap();
        let mut acl = Acl::private();
        acl.grant("bob".into(), Permission::Read);
        let updated = svc.set_acl(&mut ctx, metadata, acl).unwrap();
        assert!(updated.is_shared());
        assert!(
            c.access_count() > 0,
            "sharing must create a coordination tuple"
        );
        assert!(svc.pns().unwrap().get("/docs/report").is_none());
    }

    #[test]
    fn non_sharing_mode_works_without_coordination() {
        let mut svc = MetadataService::new(None, true, "alice".into(), SimDuration::ZERO);
        let mut clock = Clock::new();
        let mut ctx = OpCtx::new(&mut clock, "alice".into());
        svc.create(&mut ctx, md("/f")).unwrap();
        assert!(svc.get(&mut ctx, "/f").is_ok());
        assert!(svc.is_private("/anything", None));
        assert_eq!(svc.private_files().len(), 1);
    }
}
