//! The chunk transfer engine: planning and bounded-parallel execution of
//! per-chunk cloud transfers on virtual time.
//!
//! PR 1 made the data path chunked, but chunks still moved one at a time on
//! the caller's clock. This module separates *planning* from *execution*:
//!
//! * a [`TransferPlan`] lists exactly which chunks have to move (dirty
//!   chunks not already stored on upload, missing chunks on fetch), computed
//!   from a [`ChunkMap`] plus a presence predicate (backend registry or
//!   local cache state) — by content hash only, so fixed-size and
//!   content-defined maps plan identically;
//! * [`execute_plan`] runs the per-chunk operations in *waves* of up to
//!   [`TransferOptions::max_parallel`] concurrent transfers, each on a fork
//!   of the caller's clock (the same fork/join machinery DepSky uses for its
//!   per-cloud quorum waits, hoisted into [`sim_core::parallel`]). A wave
//!   costs the latency of its slowest member, so a 16-chunk transfer with
//!   parallelism 4 costs ~4 chunk latencies of wall-clock instead of 16 —
//!   on both the AWS and CoC backends, since the per-chunk operation is
//!   whatever the backend does for one blob.
//!
//! Both backends route uploads and fetches through this engine
//! ([`crate::backend`]), and the agent uses it directly for chunk-level
//! cache faulting and sequential-read prefetch ([`crate::agent`]).
//!
//! The plan/execute seam is also where the storage API's async twin cuts:
//! [`crate::backend::FileStorage::begin_write_version`] and
//! [`crate::backend::FileStorage::begin_read_chunks`] run the same plans as
//! jobs on a [`sim_core::background::BackgroundScheduler`] lane and hand the
//! caller a [`sim_core::background::Pending`] completion token; the blocking
//! calls are the degenerate `begin_*(...).wait(clock)` form.

use cloud_store::store::OpCtx;
use scfs_crypto::ContentHash;
use sim_core::parallel::{join_all, run_forked};

use crate::error::ScfsError;
use crate::types::ChunkMap;

/// Default bound on concurrent per-chunk transfers
/// ([`crate::config::ScfsConfig::max_parallel_transfers`]).
pub const DEFAULT_MAX_PARALLEL: usize = 4;

/// Knobs of one engine invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferOptions {
    /// Maximum number of chunk transfers in flight at once (≥ 1).
    pub max_parallel: usize,
}

impl TransferOptions {
    /// One transfer at a time — the pre-engine behaviour, used as the
    /// baseline in the perf harness.
    pub fn sequential() -> Self {
        TransferOptions { max_parallel: 1 }
    }

    /// A bound of `max_parallel` concurrent transfers.
    pub fn parallel(max_parallel: usize) -> Self {
        TransferOptions {
            max_parallel: max_parallel.max(1),
        }
    }
}

impl Default for TransferOptions {
    fn default() -> Self {
        TransferOptions {
            max_parallel: DEFAULT_MAX_PARALLEL,
        }
    }
}

/// One chunk the engine has to move: its position in the file and its
/// content hash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkJob {
    /// Chunk index within the file's [`ChunkMap`].
    pub index: usize,
    /// Content hash addressing the chunk in the backend and the caches.
    pub hash: ContentHash,
}

/// The set of chunks one transfer has to move, in file order, deduplicated
/// by content hash (identical chunks move once).
#[derive(Debug, Clone, Default)]
pub struct TransferPlan {
    jobs: Vec<ChunkJob>,
}

impl TransferPlan {
    /// Plans an upload: every chunk of `map` for which `already_stored`
    /// returns `false`, deduplicated within the plan (the first occurrence
    /// of a repeated chunk carries it).
    pub fn upload(map: &ChunkMap, mut already_stored: impl FnMut(&ContentHash) -> bool) -> Self {
        let mut seen = std::collections::HashSet::new();
        TransferPlan {
            jobs: map
                .chunks()
                .iter()
                .enumerate()
                .filter(|(_, h)| !already_stored(h) && seen.insert(**h))
                .map(|(index, hash)| ChunkJob { index, hash: *hash })
                .collect(),
        }
    }

    /// Plans a fetch of the chunks of `map` at `indices` for which `cached`
    /// returns `false`, deduplicated by hash.
    pub fn fetch(
        map: &ChunkMap,
        indices: impl IntoIterator<Item = usize>,
        mut cached: impl FnMut(&ContentHash) -> bool,
    ) -> Self {
        let mut seen = std::collections::HashSet::new();
        TransferPlan {
            jobs: indices
                .into_iter()
                .map(|index| ChunkJob {
                    index,
                    hash: map.chunks()[index],
                })
                .filter(|job| !cached(&job.hash) && seen.insert(job.hash))
                .collect(),
        }
    }

    /// The chunks to move, in file order.
    pub fn jobs(&self) -> &[ChunkJob] {
        &self.jobs
    }

    /// Number of chunks in the plan.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether nothing has to move.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Number of waves executing this plan takes at the given parallelism.
    pub fn waves(&self, opts: &TransferOptions) -> u64 {
        self.jobs.len().div_ceil(opts.max_parallel.max(1)) as u64
    }
}

/// Accounting of one executed plan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransferReport {
    /// Parallel waves the plan took (0 for an empty plan).
    pub waves: u64,
    /// Chunks moved.
    pub chunks: u64,
}

/// Executes `plan` by running `op` once per chunk job, at most
/// `opts.max_parallel` concurrently. Each job runs on a fork of the caller's
/// clock; after every wave the caller's clock advances to the completion of
/// the wave's slowest job. Results come back in plan (file) order.
///
/// On the first failing job the error is returned after the failing wave has
/// been joined (the time spent by that wave is still charged — the transfers
/// were issued).
pub fn execute_plan<T>(
    ctx: &mut OpCtx<'_>,
    opts: &TransferOptions,
    plan: &TransferPlan,
    mut op: impl FnMut(&ChunkJob, &mut OpCtx<'_>) -> Result<T, ScfsError>,
) -> Result<(Vec<T>, TransferReport), ScfsError> {
    let width = opts.max_parallel.max(1);
    let account = ctx.account.clone();
    let mut results = Vec::with_capacity(plan.len());
    let mut report = TransferReport::default();
    for wave in plan.jobs().chunks(width) {
        report.waves += 1;
        let runs = run_forked(ctx.clock, 0..wave.len(), |slot, fork| {
            let mut fork_ctx = OpCtx::new(fork, account.clone());
            op(&wave[slot], &mut fork_ctx)
        });
        join_all(ctx.clock, runs.iter().map(|r| r.completed_at));
        let mut wave_results: Vec<Option<Result<T, ScfsError>>> =
            (0..wave.len()).map(|_| None).collect();
        for run in runs {
            wave_results[run.index] = Some(run.value);
        }
        for result in wave_results.into_iter().flatten() {
            results.push(result?);
            report.chunks += 1;
        }
    }
    Ok((results, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloud_store::types::AccountId;
    use sim_core::time::{Clock, SimDuration, SimInstant};

    fn map_of(n_chunks: usize) -> ChunkMap {
        let mut data = vec![0u8; n_chunks * 100];
        for (i, chunk) in data.chunks_mut(100).enumerate() {
            chunk.fill(i as u8 + 1);
        }
        ChunkMap::build(&data, 100)
    }

    fn ctx(clock: &mut Clock) -> OpCtx<'_> {
        OpCtx::new(clock, AccountId::new("alice"))
    }

    #[test]
    fn upload_plan_dedups_and_filters_stored() {
        let data = [vec![1u8; 100], vec![1u8; 100], vec![2u8; 100]].concat();
        let map = ChunkMap::build(&data, 100);
        let stored = map.chunks()[2];
        let plan = TransferPlan::upload(&map, |h| *h == stored);
        // Chunks 0 and 1 are identical → one job; chunk 2 is stored → skipped.
        assert_eq!(plan.len(), 1);
        assert_eq!(plan.jobs()[0].index, 0);
    }

    #[test]
    fn fetch_plan_covers_requested_indices() {
        let map = map_of(8);
        let plan = TransferPlan::fetch(&map, 2..5, |_| false);
        let indices: Vec<usize> = plan.jobs().iter().map(|j| j.index).collect();
        assert_eq!(indices, vec![2, 3, 4]);
        let none = TransferPlan::fetch(&map, 2..5, |_| true);
        assert!(none.is_empty());
    }

    #[test]
    fn sixteen_jobs_at_parallelism_four_cost_four_waves() {
        let map = map_of(16);
        let plan = TransferPlan::upload(&map, |_| false);
        let opts = TransferOptions::parallel(4);
        assert_eq!(plan.waves(&opts), 4);
        let mut clock = Clock::new();
        let mut ctx = ctx(&mut clock);
        let (results, report) = execute_plan(&mut ctx, &opts, &plan, |job, c| {
            c.clock.advance(SimDuration::from_millis(100));
            Ok(job.index)
        })
        .unwrap();
        assert_eq!(report.waves, 4);
        assert_eq!(report.chunks, 16);
        assert_eq!(results, (0..16).collect::<Vec<_>>());
        // 4 waves of one 100 ms transfer each: the caller waited 400 ms, not
        // 1.6 s.
        assert_eq!(clock.now(), SimInstant::from_millis(400));
    }

    #[test]
    fn sequential_options_serialize_everything() {
        let map = map_of(5);
        let plan = TransferPlan::upload(&map, |_| false);
        let mut clock = Clock::new();
        let mut ctx = ctx(&mut clock);
        let (_, report) = execute_plan(&mut ctx, &TransferOptions::sequential(), &plan, |_, c| {
            c.clock.advance(SimDuration::from_millis(10));
            Ok(())
        })
        .unwrap();
        assert_eq!(report.waves, 5);
        assert_eq!(clock.now(), SimInstant::from_millis(50));
    }

    #[test]
    fn errors_fail_fast_but_charge_the_wave() {
        let map = map_of(8);
        let plan = TransferPlan::upload(&map, |_| false);
        let mut clock = Clock::new();
        let mut ctx = ctx(&mut clock);
        let err = execute_plan(&mut ctx, &TransferOptions::parallel(4), &plan, |job, c| {
            c.clock.advance(SimDuration::from_millis(100));
            if job.index == 2 {
                Err(ScfsError::invalid("boom"))
            } else {
                Ok(())
            }
        })
        .unwrap_err();
        assert!(matches!(err, ScfsError::Invalid { .. }));
        // The failing (first) wave was issued and joined; the second never ran.
        assert_eq!(clock.now(), SimInstant::from_millis(100));
    }

    #[test]
    fn empty_plan_is_free() {
        let plan = TransferPlan::default();
        let mut clock = Clock::new();
        let mut ctx = ctx(&mut clock);
        let (results, report) =
            execute_plan::<()>(&mut ctx, &TransferOptions::default(), &plan, |_, _| {
                panic!("no jobs to run")
            })
            .unwrap();
        assert!(results.is_empty());
        assert_eq!(report, TransferReport::default());
        assert_eq!(clock.now(), SimInstant::EPOCH);
    }
}
