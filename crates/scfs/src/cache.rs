//! The two levels of client-side data cache (paper §2.5.1, "Storage service").
//!
//! SCFS keeps every file it reads or writes locally:
//!
//! * a **main-memory LRU cache** (hundreds of MB) holds the contents of open
//!   files; reads and writes of open files touch only this cache;
//! * the **local disk** acts as a large, long-term LRU file cache (GBs); its
//!   content is validated against the coordination service (the version hash)
//!   before being returned, so a stale copy is never served.
//!
//! Both caches charge realistic local latencies to the client's virtual clock
//! (microseconds for memory, milliseconds for disk) so that the workloads'
//! local operations — the vast majority under the *always write / avoid
//! reading* principle — cost what they would on the paper's testbed.

use std::collections::HashMap;

use scfs_crypto::ContentHash;
use sim_core::latency::LatencyProfile;
use sim_core::rng::DetRng;
use sim_core::time::Clock;
use sim_core::units::Bytes;

/// One cached file: its contents and the version hash they correspond to.
#[derive(Debug, Clone)]
struct CachedFile {
    data: Vec<u8>,
    hash: Option<ContentHash>,
    last_used: u64,
}

/// Statistics of one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a usable entry.
    pub hits: u64,
    /// Lookups that missed (absent or stale).
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
}

/// An LRU cache of whole files bounded by total bytes, with a latency profile
/// charged on every access.
#[derive(Debug)]
pub struct FileCache {
    name: &'static str,
    capacity: Bytes,
    used: u64,
    entries: HashMap<String, CachedFile>,
    tick: u64,
    latency: LatencyProfile,
    rng: DetRng,
    stats: CacheStats,
}

impl FileCache {
    /// Creates a main-memory cache of the given capacity.
    pub fn memory(capacity: Bytes, seed: u64) -> Self {
        FileCache::new("memory", capacity, LatencyProfile::main_memory(), seed)
    }

    /// Creates a local-disk cache of the given capacity.
    pub fn disk(capacity: Bytes, seed: u64) -> Self {
        FileCache::new("disk", capacity, LatencyProfile::local_disk(), seed)
    }

    fn new(name: &'static str, capacity: Bytes, latency: LatencyProfile, seed: u64) -> Self {
        FileCache {
            name,
            capacity,
            used: 0,
            entries: HashMap::new(),
            tick: 0,
            latency,
            rng: DetRng::new(seed),
            stats: CacheStats::default(),
        }
    }

    /// The cache level name (`"memory"` or `"disk"`).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Bytes currently cached.
    pub fn used_bytes(&self) -> Bytes {
        Bytes::new(self.used)
    }

    /// Access statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of cached files.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn charge(&mut self, clock: &mut Clock, upload: Bytes, download: Bytes) {
        let latency = self.latency.sample_op(&mut self.rng, upload, download);
        clock.advance(latency);
    }

    /// Looks up `path` and returns its contents if the cached entry matches
    /// `expected_hash` (a `None` expectation accepts any entry — used for
    /// freshly created files that have no cloud version yet).
    pub fn get(
        &mut self,
        clock: &mut Clock,
        path: &str,
        expected_hash: Option<&ContentHash>,
    ) -> Option<Vec<u8>> {
        self.tick += 1;
        let tick = self.tick;
        let hit = match self.entries.get_mut(path) {
            Some(entry) => {
                let fresh = match expected_hash {
                    None => true,
                    Some(h) => entry.hash.as_ref() == Some(h),
                };
                if fresh {
                    entry.last_used = tick;
                    Some(entry.data.clone())
                } else {
                    None
                }
            }
            None => None,
        };
        match hit {
            Some(data) => {
                self.stats.hits += 1;
                self.charge(clock, Bytes::ZERO, Bytes::new(data.len() as u64));
                Some(data)
            }
            None => {
                self.stats.misses += 1;
                self.charge(clock, Bytes::ZERO, Bytes::ZERO);
                None
            }
        }
    }

    /// Inserts (or replaces) `path` with `data` tagged by `hash`, evicting
    /// least-recently-used entries if needed.
    pub fn put(&mut self, clock: &mut Clock, path: &str, data: Vec<u8>, hash: Option<ContentHash>) {
        self.tick += 1;
        let size = data.len() as u64;
        // A single file larger than the whole cache bypasses it: no bytes
        // are written, so no transfer latency is charged. The entry the
        // payload would have replaced still has to go (it is stale), and
        // losing it to the capacity policy is an eviction like any other.
        if size > self.capacity.get() {
            if let Some(old) = self.entries.remove(path) {
                self.used -= old.data.len() as u64;
                self.stats.evictions += 1;
            }
            return;
        }
        self.charge(clock, Bytes::new(size), Bytes::ZERO);
        if let Some(old) = self.entries.remove(path) {
            self.used -= old.data.len() as u64;
        }
        while self.used + size > self.capacity.get() {
            if !self.evict_lru() {
                break;
            }
        }
        self.used += size;
        self.entries.insert(
            path.to_string(),
            CachedFile {
                data,
                hash,
                last_used: self.tick,
            },
        );
    }

    /// Removes `path` from the cache (e.g. on unlink).
    pub fn remove(&mut self, path: &str) {
        if let Some(old) = self.entries.remove(path) {
            self.used -= old.data.len() as u64;
        }
    }

    /// Presence probe for the lazy read path: whether a usable entry exists,
    /// refreshing its LRU recency so that chunks a transfer plan is about to
    /// consume are not evicted between planning and execution. No latency is
    /// charged and no hit/miss is counted — this is a planning query, not a
    /// data access.
    pub fn probe(&mut self, path: &str, expected_hash: Option<&ContentHash>) -> bool {
        self.tick += 1;
        let tick = self.tick;
        match self.entries.get_mut(path) {
            Some(entry) => {
                let fresh = match expected_hash {
                    None => true,
                    Some(h) => entry.hash.as_ref() == Some(h),
                };
                if fresh {
                    entry.last_used = tick;
                }
                fresh
            }
            None => false,
        }
    }

    /// Whether the cache holds an entry for `path` matching `expected_hash`
    /// (no latency charged; used for accounting only).
    pub fn contains(&self, path: &str, expected_hash: Option<&ContentHash>) -> bool {
        match self.entries.get(path) {
            Some(e) => match expected_hash {
                None => true,
                Some(h) => e.hash.as_ref() == Some(h),
            },
            None => false,
        }
    }

    fn evict_lru(&mut self) -> bool {
        let victim = self
            .entries
            .iter()
            .min_by_key(|(_, e)| e.last_used)
            .map(|(k, _)| k.clone());
        match victim {
            Some(key) => {
                if let Some(e) = self.entries.remove(&key) {
                    self.used -= e.data.len() as u64;
                }
                self.stats.evictions += 1;
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scfs_crypto::sha256;

    #[test]
    fn put_get_round_trip_and_stats() {
        let mut cache = FileCache::memory(Bytes::mib(1), 1);
        let mut clock = Clock::new();
        let data = vec![1u8; 1000];
        let hash = sha256(&data);
        cache.put(&mut clock, "/f", data.clone(), Some(hash));
        assert_eq!(cache.get(&mut clock, "/f", Some(&hash)).unwrap(), data);
        assert!(cache.get(&mut clock, "/missing", None).is_none());
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn stale_entries_are_not_served() {
        let mut cache = FileCache::disk(Bytes::mib(1), 2);
        let mut clock = Clock::new();
        let old = vec![1u8; 100];
        cache.put(&mut clock, "/f", old.clone(), Some(sha256(&old)));
        // The coordination service now says the file has a newer hash.
        let new_hash = sha256(b"newer version");
        assert!(cache.get(&mut clock, "/f", Some(&new_hash)).is_none());
        // With no expectation the stale data is still retrievable (fresh
        // files that were never uploaded have no hash to validate).
        assert!(cache.get(&mut clock, "/f", None).is_some());
    }

    #[test]
    fn lru_eviction_respects_capacity() {
        let mut cache = FileCache::memory(Bytes::new(300), 3);
        let mut clock = Clock::new();
        cache.put(&mut clock, "/a", vec![0u8; 100], None);
        cache.put(&mut clock, "/b", vec![0u8; 100], None);
        cache.put(&mut clock, "/c", vec![0u8; 100], None);
        // Touch /a so /b becomes the LRU victim.
        assert!(cache.get(&mut clock, "/a", None).is_some());
        cache.put(&mut clock, "/d", vec![0u8; 100], None);
        assert!(cache.contains("/a", None));
        assert!(!cache.contains("/b", None));
        assert!(cache.contains("/d", None));
        assert!(cache.stats().evictions >= 1);
        assert!(cache.used_bytes().get() <= 300);
    }

    #[test]
    fn probe_reports_presence_and_refreshes_recency_without_stats() {
        let mut cache = FileCache::memory(Bytes::new(300), 11);
        let mut clock = Clock::new();
        cache.put(&mut clock, "/a", vec![0u8; 100], None);
        cache.put(&mut clock, "/b", vec![0u8; 100], None);
        cache.put(&mut clock, "/c", vec![0u8; 100], None);
        let before = clock.now();
        // Probing /a refreshes it, so /b becomes the LRU victim...
        assert!(cache.probe("/a", None));
        assert!(!cache.probe("/missing", None));
        // ...and a stale-hash probe does not match.
        assert!(!cache.probe("/a", Some(&sha256(b"other version"))));
        assert_eq!(clock.now(), before, "probe charges no latency");
        assert_eq!(cache.stats().hits, 0);
        assert_eq!(cache.stats().misses, 0);
        cache.put(&mut clock, "/d", vec![0u8; 100], None);
        assert!(cache.contains("/a", None));
        assert!(!cache.contains("/b", None), "/b was the LRU victim");
    }

    #[test]
    fn oversized_files_bypass_the_cache() {
        let mut cache = FileCache::memory(Bytes::new(100), 4);
        let mut clock = Clock::new();
        cache.put(&mut clock, "/huge", vec![0u8; 1000], None);
        assert!(!cache.contains("/huge", None));
        assert!(cache.is_empty());
    }

    #[test]
    fn oversized_puts_charge_no_transfer_latency() {
        let mut cache = FileCache::disk(Bytes::new(100), 12);
        let mut clock = Clock::new();
        let before = clock.now();
        // A bypassed put writes nothing, so it must not pay the (large)
        // upload latency of the payload it never stored.
        cache.put(&mut clock, "/huge", vec![0u8; 50 << 20], None);
        assert_eq!(clock.now(), before, "bypassed put charged latency");
    }

    #[test]
    fn oversized_put_over_an_entry_counts_the_eviction() {
        let mut cache = FileCache::memory(Bytes::new(100), 13);
        let mut clock = Clock::new();
        cache.put(&mut clock, "/f", vec![0u8; 50], None);
        assert_eq!(cache.stats().evictions, 0);
        // The oversized replacement bypasses the cache but still displaces
        // the stale entry — that loss is an eviction, not a silent drop.
        cache.put(&mut clock, "/f", vec![0u8; 1000], None);
        assert!(!cache.contains("/f", None));
        assert_eq!(cache.used_bytes(), Bytes::ZERO);
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn remove_frees_space() {
        let mut cache = FileCache::memory(Bytes::new(200), 5);
        let mut clock = Clock::new();
        cache.put(&mut clock, "/a", vec![0u8; 150], None);
        cache.remove("/a");
        assert_eq!(cache.used_bytes(), Bytes::ZERO);
        cache.remove("/a"); // idempotent
    }

    #[test]
    fn eviction_follows_strict_lru_order() {
        let mut cache = FileCache::memory(Bytes::new(400), 7);
        let mut clock = Clock::new();
        for path in ["/a", "/b", "/c", "/d"] {
            cache.put(&mut clock, path, vec![0u8; 100], None);
        }
        // Touch in the order c, a, d → b is the least recently used.
        for path in ["/c", "/a", "/d"] {
            assert!(cache.get(&mut clock, path, None).is_some());
        }
        cache.put(&mut clock, "/e", vec![0u8; 100], None);
        assert!(!cache.contains("/b", None), "/b was the LRU victim");
        // Next victim is /c (oldest surviving access).
        cache.put(&mut clock, "/f", vec![0u8; 100], None);
        assert!(!cache.contains("/c", None), "/c was the next victim");
        for survivor in ["/a", "/d", "/e", "/f"] {
            assert!(cache.contains(survivor, None), "{survivor} must survive");
        }
    }

    #[test]
    fn stats_count_hits_misses_and_evictions_exactly() {
        let mut cache = FileCache::memory(Bytes::new(250), 8);
        let mut clock = Clock::new();
        assert_eq!(cache.stats(), CacheStats::default());
        cache.put(&mut clock, "/a", vec![0u8; 100], None);
        cache.put(&mut clock, "/b", vec![0u8; 100], None);
        // 2 hits, 1 miss.
        assert!(cache.get(&mut clock, "/a", None).is_some());
        assert!(cache.get(&mut clock, "/b", None).is_some());
        assert!(cache.get(&mut clock, "/missing", None).is_none());
        // Inserting a third 100-byte entry evicts exactly one entry.
        cache.put(&mut clock, "/c", vec![0u8; 100], None);
        let stats = cache.stats();
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.evictions, 1);
    }

    #[test]
    fn stale_hash_lookup_counts_as_miss_and_entry_is_replaceable() {
        let mut cache = FileCache::disk(Bytes::mib(1), 9);
        let mut clock = Clock::new();
        let v1 = b"version one".to_vec();
        let h1 = sha256(&v1);
        cache.put(&mut clock, "/f", v1.clone(), Some(h1));

        // The anchor now advertises a newer hash: the cached entry is stale.
        let v2 = b"version two".to_vec();
        let h2 = sha256(&v2);
        assert!(cache.get(&mut clock, "/f", Some(&h2)).is_none());
        assert_eq!(cache.stats().misses, 1);

        // Re-inserting under the new hash replaces the entry in place.
        cache.put(&mut clock, "/f", v2.clone(), Some(h2));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(&mut clock, "/f", Some(&h2)).unwrap(), v2);
        assert!(
            cache.get(&mut clock, "/f", Some(&h1)).is_none(),
            "old hash is gone"
        );
    }

    #[test]
    fn replacing_an_entry_does_not_leak_used_bytes() {
        let mut cache = FileCache::memory(Bytes::new(1000), 10);
        let mut clock = Clock::new();
        cache.put(&mut clock, "/f", vec![0u8; 400], None);
        cache.put(&mut clock, "/f", vec![0u8; 100], None);
        assert_eq!(cache.used_bytes(), Bytes::new(100));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn memory_is_faster_than_disk() {
        let mut mem = FileCache::memory(Bytes::mib(64), 6);
        let mut disk = FileCache::disk(Bytes::mib(64), 6);
        let mut mem_clock = Clock::new();
        let mut disk_clock = Clock::new();
        let data = vec![0u8; 64 * 1024];
        for i in 0..20 {
            mem.put(&mut mem_clock, &format!("/f{i}"), data.clone(), None);
            disk.put(&mut disk_clock, &format!("/f{i}"), data.clone(), None);
        }
        assert!(mem_clock.now() < disk_clock.now());
    }
}
