//! Pluggable replacement policies for the client-side cache tiers.
//!
//! A [`CachePolicy`] owns the *ordering* side of one cache tier: which
//! resident entry is the next victim, and whether a new entry may displace
//! it at all (admission). The tier ([`crate::cache::CacheTier`]) owns the
//! bytes, the key index and the latency accounting; entries are referred to
//! between the two by a dense slab index ([`EntryId`]) so policy bookkeeping
//! never touches the keys themselves.
//!
//! Three policies are provided, selected per tier through
//! [`crate::config::CacheConfig`]:
//!
//! * [`LruPolicy`] — least-recently-used via an intrusive doubly-linked
//!   recency list. Victim selection is a tail read: O(1), unlike the old
//!   `FileCache` whose eviction scanned the whole map for the minimum
//!   recency stamp.
//! * [`TinyLfuPolicy`] — LRU eviction order gated by a TinyLFU-style
//!   admission filter: a 4-bit count-min [`FrequencySketch`] estimates each
//!   key's access frequency, and a new entry is only admitted under
//!   capacity pressure if it is at least as popular as the current victim.
//!   This protects a hot working set from one-shot scans. All O(1).
//! * [`GdsfPolicy`] — size-aware Greedy-Dual-Size-Frequency: priority
//!   `L + frequency / size`, evicting the lowest-priority entry and aging
//!   the inflation term `L` to the evicted priority. Small, frequently hit
//!   entries survive; big cold ones go first. Victim selection is O(log n)
//!   through an ordered index — still no O(n) scan.
//!
//! Every policy counts its bookkeeping [`CachePolicy::steps`] so tests can
//! assert that eviction cost is independent of the resident entry count.

use std::collections::BTreeMap;

/// Dense per-tier slab index of a resident entry. Ids are assigned by the
/// tier and may be reused after an entry leaves.
pub type EntryId = u32;

/// Sentinel for "no node" in the intrusive list.
const NIL: u32 = u32::MAX;

/// Which replacement policy a cache tier runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// Least-recently-used (intrusive recency list, O(1) eviction).
    Lru,
    /// LRU eviction order with TinyLFU frequency-sketch admission.
    TinyLfu,
    /// Size-aware Greedy-Dual-Size-Frequency (O(log n) eviction).
    Gdsf,
}

impl PolicyKind {
    /// Short label used in reports and bench rows.
    pub fn label(&self) -> &'static str {
        match self {
            PolicyKind::Lru => "lru",
            PolicyKind::TinyLfu => "tinylfu",
            PolicyKind::Gdsf => "gdsf",
        }
    }

    /// Builds the policy, sized for a tier of `capacity_bytes`.
    pub fn build(&self, capacity_bytes: u64) -> Box<dyn CachePolicy> {
        match self {
            PolicyKind::Lru => Box::new(LruPolicy::new()),
            PolicyKind::TinyLfu => Box::new(TinyLfuPolicy::new(capacity_bytes)),
            PolicyKind::Gdsf => Box::new(GdsfPolicy::new()),
        }
    }
}

/// The victim-selection + admission half of one cache tier.
///
/// The tier calls `on_insert` / `on_access` / `on_remove` to mirror entry
/// lifecycle into the policy's index, asks `victim` for the next entry to
/// evict under capacity pressure, and consults `admit` before inserting a
/// new entry that would require evictions. `record_access` feeds the
/// admission filter on *every* lookup, hit or miss, so frequency estimates
/// cover keys that are not currently resident.
pub trait CachePolicy: std::fmt::Debug {
    /// Which policy this is.
    fn kind(&self) -> PolicyKind;

    /// An entry became resident under `id` (`key_hash` identifies the key to
    /// the admission filter; `size` is its payload size in bytes).
    fn on_insert(&mut self, id: EntryId, key_hash: u64, size: u64);

    /// A resident entry was hit (or re-written in place).
    fn on_access(&mut self, id: EntryId);

    /// A resident entry left the tier (eviction, invalidation or removal).
    fn on_remove(&mut self, id: EntryId);

    /// The entry to evict next, without removing it. `None` when empty.
    fn victim(&mut self) -> Option<EntryId>;

    /// Whether a new entry (`key_hash`, `size` bytes) may displace the
    /// current victim(s). Only consulted under capacity pressure.
    fn admit(&mut self, key_hash: u64, size: u64) -> bool;

    /// Records one access to `key_hash` in the admission filter (called on
    /// every lookup, including misses of non-resident keys).
    fn record_access(&mut self, key_hash: u64);

    /// Total bookkeeping steps performed so far. Each index operation
    /// (link/unlink/touch/victim/sketch update) counts a constant number of
    /// steps, so steps-per-eviction is flat for an O(1) policy and must not
    /// grow with the resident entry count.
    fn steps(&self) -> u64;
}

/// An intrusive doubly-linked recency list over slab indices: head = most
/// recently used, tail = least recently used. All operations are O(1).
#[derive(Debug, Default)]
struct IntrusiveList {
    prev: Vec<u32>,
    next: Vec<u32>,
    linked: Vec<bool>,
    head: u32,
    tail: u32,
}

impl IntrusiveList {
    fn new() -> Self {
        IntrusiveList {
            prev: Vec::new(),
            next: Vec::new(),
            linked: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    fn ensure(&mut self, id: EntryId) {
        let want = id as usize + 1;
        if self.prev.len() < want {
            self.prev.resize(want, NIL);
            self.next.resize(want, NIL);
            self.linked.resize(want, false);
        }
    }

    fn push_front(&mut self, id: EntryId) {
        self.ensure(id);
        debug_assert!(!self.linked[id as usize], "entry already linked");
        self.prev[id as usize] = NIL;
        self.next[id as usize] = self.head;
        if self.head != NIL {
            self.prev[self.head as usize] = id;
        }
        self.head = id;
        if self.tail == NIL {
            self.tail = id;
        }
        self.linked[id as usize] = true;
    }

    fn unlink(&mut self, id: EntryId) {
        self.ensure(id);
        if !self.linked[id as usize] {
            return;
        }
        let (p, n) = (self.prev[id as usize], self.next[id as usize]);
        if p != NIL {
            self.next[p as usize] = n;
        } else {
            self.head = n;
        }
        if n != NIL {
            self.prev[n as usize] = p;
        } else {
            self.tail = p;
        }
        self.prev[id as usize] = NIL;
        self.next[id as usize] = NIL;
        self.linked[id as usize] = false;
    }

    fn move_to_front(&mut self, id: EntryId) {
        self.unlink(id);
        self.push_front(id);
    }

    fn tail(&self) -> Option<EntryId> {
        if self.tail == NIL {
            None
        } else {
            Some(self.tail)
        }
    }
}

/// Least-recently-used via the intrusive recency list: O(1) insert, touch
/// and victim selection. Admits everything (classic LRU).
#[derive(Debug)]
pub struct LruPolicy {
    list: IntrusiveList,
    steps: u64,
}

impl LruPolicy {
    /// Creates an empty LRU policy.
    pub fn new() -> Self {
        LruPolicy {
            list: IntrusiveList::new(),
            steps: 0,
        }
    }
}

impl Default for LruPolicy {
    fn default() -> Self {
        LruPolicy::new()
    }
}

impl CachePolicy for LruPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::Lru
    }

    fn on_insert(&mut self, id: EntryId, _key_hash: u64, _size: u64) {
        self.steps += 1;
        self.list.push_front(id);
    }

    fn on_access(&mut self, id: EntryId) {
        self.steps += 1;
        self.list.move_to_front(id);
    }

    fn on_remove(&mut self, id: EntryId) {
        self.steps += 1;
        self.list.unlink(id);
    }

    fn victim(&mut self) -> Option<EntryId> {
        self.steps += 1;
        self.list.tail()
    }

    fn admit(&mut self, _key_hash: u64, _size: u64) -> bool {
        self.steps += 1;
        true
    }

    fn record_access(&mut self, _key_hash: u64) {}

    fn steps(&self) -> u64 {
        self.steps
    }
}

/// A 4-bit count-min sketch with periodic halving (aging), in the style of
/// TinyLFU: four hash rows share a flat table of 4-bit counters packed 16
/// per `u64` word. Increments saturate at 15; once `sample_size` accesses
/// have been recorded, every counter is halved so the sketch tracks *recent*
/// popularity instead of all-time counts.
#[derive(Debug)]
pub struct FrequencySketch {
    table: Vec<u64>,
    mask: u64,
    size: u64,
    sample_size: u64,
}

/// Odd multipliers mixing the key hash into four independent rows.
const SKETCH_SEEDS: [u64; 4] = [
    0xc3a5_c85c_97cb_3127,
    0xb492_b66f_be98_f273,
    0x9ae1_6a3b_2f90_404f,
    0xcbf2_9ce4_8422_2325,
];

impl FrequencySketch {
    /// Creates a sketch sized for roughly `capacity_bytes / 64 KiB` entries
    /// (clamped), the expected chunk population of a tier that size.
    pub fn for_capacity(capacity_bytes: u64) -> Self {
        let counters = (capacity_bytes / (64 << 10)).clamp(512, 1 << 20);
        FrequencySketch::with_counters(counters as usize)
    }

    /// Creates a sketch with at least `counters` 4-bit counters.
    pub fn with_counters(counters: usize) -> Self {
        let words = (counters.div_ceil(16)).next_power_of_two().max(4);
        FrequencySketch {
            table: vec![0u64; words],
            mask: words as u64 - 1,
            size: 0,
            sample_size: (counters as u64 * 10).max(1024),
        }
    }

    fn slot(&self, key_hash: u64, row: usize) -> (usize, u32) {
        let h = key_hash
            .wrapping_mul(SKETCH_SEEDS[row])
            .rotate_left(17 + row as u32 * 11);
        let word = (h & self.mask) as usize;
        let nibble = ((h >> 32) & 0xF) as u32;
        (word, nibble * 4)
    }

    /// Records one access to `key_hash`.
    pub fn increment(&mut self, key_hash: u64) {
        for row in 0..4 {
            let (word, shift) = self.slot(key_hash, row);
            let current = (self.table[word] >> shift) & 0xF;
            if current < 15 {
                self.table[word] += 1u64 << shift;
            }
        }
        self.size += 1;
        if self.size >= self.sample_size {
            self.age();
        }
    }

    /// Estimated access frequency of `key_hash` (min over the four rows).
    pub fn estimate(&self, key_hash: u64) -> u64 {
        (0..4)
            .map(|row| {
                let (word, shift) = self.slot(key_hash, row);
                (self.table[word] >> shift) & 0xF
            })
            .min()
            .unwrap_or(0)
    }

    /// Halves every counter (the TinyLFU reset that keeps estimates recent).
    fn age(&mut self) {
        for word in &mut self.table {
            // Halve all 16 nibbles at once: shift, then clear the bit that
            // leaked in from each nibble's upper neighbour.
            *word = (*word >> 1) & 0x7777_7777_7777_7777;
        }
        self.size /= 2;
    }
}

/// LRU eviction order gated by TinyLFU admission: under capacity pressure a
/// new entry is admitted only if the frequency sketch estimates it at least
/// as popular as the current victim. O(1) throughout.
#[derive(Debug)]
pub struct TinyLfuPolicy {
    list: IntrusiveList,
    sketch: FrequencySketch,
    /// Key hash per resident entry id, for victim-frequency lookups.
    key_hash: Vec<u64>,
    steps: u64,
}

impl TinyLfuPolicy {
    /// Creates a TinyLFU policy with a sketch sized for `capacity_bytes`.
    pub fn new(capacity_bytes: u64) -> Self {
        TinyLfuPolicy {
            list: IntrusiveList::new(),
            sketch: FrequencySketch::for_capacity(capacity_bytes),
            key_hash: Vec::new(),
            steps: 0,
        }
    }
}

impl CachePolicy for TinyLfuPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::TinyLfu
    }

    fn on_insert(&mut self, id: EntryId, key_hash: u64, _size: u64) {
        self.steps += 1;
        if self.key_hash.len() <= id as usize {
            self.key_hash.resize(id as usize + 1, 0);
        }
        self.key_hash[id as usize] = key_hash;
        self.list.push_front(id);
    }

    fn on_access(&mut self, id: EntryId) {
        self.steps += 1;
        self.list.move_to_front(id);
    }

    fn on_remove(&mut self, id: EntryId) {
        self.steps += 1;
        self.list.unlink(id);
    }

    fn victim(&mut self) -> Option<EntryId> {
        self.steps += 1;
        self.list.tail()
    }

    fn admit(&mut self, key_hash: u64, _size: u64) -> bool {
        self.steps += 1;
        match self.list.tail() {
            // Admit when at least as popular as the entry it would displace;
            // a one-shot scan (estimate 0 or 1) cannot push out a hot entry.
            Some(victim) => {
                let victim_freq = self.sketch.estimate(self.key_hash[victim as usize]);
                self.sketch.estimate(key_hash) >= victim_freq
            }
            None => true,
        }
    }

    fn record_access(&mut self, key_hash: u64) {
        self.steps += 1;
        self.sketch.increment(key_hash);
    }

    fn steps(&self) -> u64 {
        self.steps
    }
}

/// Priority quantization for the GDSF ordered index (nano-units keep the
/// `f64` priorities totally ordered as integers).
fn quantize(priority: f64) -> u64 {
    (priority * 1e9).min(u64::MAX as f64 / 2.0) as u64
}

/// Size-aware Greedy-Dual-Size-Frequency. Priority of an entry is
/// `L + frequency / size_kib`; the lowest-priority entry is the victim, and
/// the aging term `L` rises to each evicted priority so long-resident
/// entries must keep earning hits. Victim selection and priority updates go
/// through an ordered index — O(log n), never an O(n) scan.
#[derive(Debug)]
pub struct GdsfPolicy {
    /// Quantized priority → entry id, ordered: first key is the victim.
    queue: BTreeMap<(u64, EntryId), ()>,
    /// Per-entry (quantized priority, frequency, size) of resident entries.
    entries: Vec<(u64, u64, u64)>,
    resident: Vec<bool>,
    /// The inflation (aging) term, raised to each evicted priority.
    inflation: f64,
    steps: u64,
}

impl GdsfPolicy {
    /// Creates an empty GDSF policy.
    pub fn new() -> Self {
        GdsfPolicy {
            queue: BTreeMap::new(),
            entries: Vec::new(),
            resident: Vec::new(),
            inflation: 0.0,
            steps: 0,
        }
    }

    fn priority(&self, freq: u64, size: u64) -> u64 {
        let size_kib = (size as f64 / 1024.0).max(1.0 / 1024.0);
        quantize(self.inflation + freq as f64 / size_kib)
    }

    fn ensure(&mut self, id: EntryId) {
        let want = id as usize + 1;
        if self.entries.len() < want {
            self.entries.resize(want, (0, 0, 0));
            self.resident.resize(want, false);
        }
    }
}

impl Default for GdsfPolicy {
    fn default() -> Self {
        GdsfPolicy::new()
    }
}

impl CachePolicy for GdsfPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::Gdsf
    }

    fn on_insert(&mut self, id: EntryId, _key_hash: u64, size: u64) {
        self.steps += 1;
        self.ensure(id);
        let prio = self.priority(1, size);
        self.entries[id as usize] = (prio, 1, size);
        self.resident[id as usize] = true;
        self.queue.insert((prio, id), ());
    }

    fn on_access(&mut self, id: EntryId) {
        self.steps += 1;
        self.ensure(id);
        if !self.resident[id as usize] {
            return;
        }
        let (old_prio, freq, size) = self.entries[id as usize];
        self.queue.remove(&(old_prio, id));
        let freq = freq.saturating_add(1);
        let prio = self.priority(freq, size);
        self.entries[id as usize] = (prio, freq, size);
        self.queue.insert((prio, id), ());
    }

    fn on_remove(&mut self, id: EntryId) {
        self.steps += 1;
        self.ensure(id);
        if !self.resident[id as usize] {
            return;
        }
        let (prio, _, _) = self.entries[id as usize];
        self.queue.remove(&(prio, id));
        self.resident[id as usize] = false;
        // Aging: the dual value rises to the departing priority, so stale
        // residents must out-earn newcomers to survive.
        self.inflation = self.inflation.max(prio as f64 / 1e9);
    }

    fn victim(&mut self) -> Option<EntryId> {
        self.steps += 1;
        self.queue.keys().next().map(|&(_, id)| id)
    }

    fn admit(&mut self, _key_hash: u64, _size: u64) -> bool {
        self.steps += 1;
        true
    }

    fn record_access(&mut self, _key_hash: u64) {}

    fn steps(&self) -> u64 {
        self.steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive_lru(policy: &mut dyn CachePolicy) {
        for id in 0..4 {
            policy.on_insert(id, id as u64, 100);
        }
        // Touch 0 → victim must be 1 (the oldest untouched).
        policy.on_access(0);
        assert_eq!(policy.victim(), Some(1));
        policy.on_remove(1);
        assert_eq!(policy.victim(), Some(2));
    }

    #[test]
    fn lru_victim_is_least_recently_used() {
        drive_lru(&mut LruPolicy::new());
    }

    #[test]
    fn tinylfu_keeps_lru_order_for_eviction() {
        drive_lru(&mut TinyLfuPolicy::new(1 << 20));
    }

    #[test]
    fn tinylfu_admission_rejects_cold_keys_under_pressure() {
        let mut p = TinyLfuPolicy::new(1 << 20);
        p.on_insert(0, 111, 100);
        // The resident key earns frequency; the candidate never accessed.
        for _ in 0..8 {
            p.record_access(111);
        }
        assert!(!p.admit(999, 100), "a cold key must not displace a hot one");
        // Once the candidate becomes at least as popular, it is admitted.
        for _ in 0..9 {
            p.record_access(999);
        }
        assert!(p.admit(999, 100));
    }

    #[test]
    fn sketch_estimates_track_and_age() {
        let mut s = FrequencySketch::with_counters(512);
        for _ in 0..10 {
            s.increment(42);
        }
        assert!(s.estimate(42) >= 8, "estimate {}", s.estimate(42));
        assert!(s.estimate(43) <= 1);
        // Saturation at 15.
        for _ in 0..100 {
            s.increment(42);
        }
        assert!(s.estimate(42) <= 15);
    }

    #[test]
    fn sketch_aging_halves_counts() {
        let mut s = FrequencySketch::with_counters(512);
        for _ in 0..12 {
            s.increment(7);
        }
        let before = s.estimate(7);
        s.age();
        assert_eq!(s.estimate(7), before / 2);
    }

    #[test]
    fn gdsf_prefers_evicting_large_cold_entries() {
        let mut p = GdsfPolicy::new();
        p.on_insert(0, 0, 1 << 20); // 1 MiB, cold
        p.on_insert(1, 1, 1 << 10); // 1 KiB, same frequency
        assert_eq!(p.victim(), Some(0), "the big entry has lower priority");
        // Frequency can rescue the big entry.
        for _ in 0..2048 {
            p.on_access(0);
        }
        assert_eq!(p.victim(), Some(1));
    }

    #[test]
    fn gdsf_aging_rises_on_eviction() {
        let mut p = GdsfPolicy::new();
        p.on_insert(0, 0, 1024);
        for _ in 0..5 {
            p.on_access(0);
        }
        p.on_remove(0);
        assert!(p.inflation > 0.0);
        // A fresh insert now starts at the inflated baseline, so it is not
        // instantly the victim against older, hotter entries.
        p.on_insert(1, 1, 1024);
        assert_eq!(p.victim(), Some(1));
    }

    #[test]
    fn policies_report_steps() {
        for kind in [PolicyKind::Lru, PolicyKind::TinyLfu, PolicyKind::Gdsf] {
            let mut p = kind.build(1 << 20);
            assert_eq!(p.kind(), kind);
            p.on_insert(0, 0, 10);
            p.on_access(0);
            let _ = p.victim();
            p.on_remove(0);
            assert!(p.steps() >= 4, "{:?} must count steps", kind);
        }
    }

    #[test]
    fn intrusive_list_id_reuse_is_safe() {
        let mut l = IntrusiveList::new();
        l.push_front(0);
        l.push_front(1);
        l.unlink(0);
        l.push_front(0); // reused id
        assert_eq!(l.tail(), Some(1));
        l.unlink(1);
        assert_eq!(l.tail(), Some(0));
        l.unlink(0);
        assert_eq!(l.tail(), None);
    }
}
