//! The two levels of client-side data cache (paper §2.5.1, "Storage
//! service"), rebuilt as a pluggable-policy, two-tier chunk cache.
//!
//! SCFS keeps every file it reads or writes locally: a **main-memory cache**
//! (hundreds of MB) over a large, long-term **local-disk cache** (GBs).
//! Both tiers charge realistic local latencies to the client's virtual
//! clock (microseconds for memory, milliseconds for disk), and a cached
//! entry is validated against the coordination service's version hash
//! before being served, so a stale copy is never returned.
//!
//! The module is split in three layers:
//!
//! * [`policy`] — the [`CachePolicy`] trait (victim selection + admission)
//!   and its implementations: LRU over an intrusive recency list (O(1)
//!   eviction — no full-map scan), TinyLFU frequency-sketch admission, and
//!   size-aware GDSF. Selected per tier via [`PolicyKind`].
//! * [`tier`] — [`CacheTier`], one bounded level owning the payloads
//!   (`Arc<[u8]>`: hits never copy chunk bytes), the key index, the byte
//!   accounting and the latency charging.
//! * [`TieredCache`] — the memory-over-disk composition the agent mounts:
//!   disk hits are **promoted** into memory by moving the `Arc` (one insert
//!   charge, no copy), and memory evictions are **demoted** to disk instead
//!   of being dropped, so re-reads stay local instead of touching the
//!   cloud.
//!
//! Policies and capacities are chosen through [`CacheConfig`], carried by
//! [`crate::config::ScfsConfig`]; the
//! [fleet harness](../../workloads/fleet/index.html) measures the resulting
//! hit rates and latency percentiles at 10⁴+ simulated mounts.

pub mod policy;
pub mod tier;

pub use policy::{CachePolicy, FrequencySketch, PolicyKind};
pub use tier::{CacheStats, CacheTier, Evicted, TieredCache, TieredStats, WriteMode};

use sim_core::units::Bytes;

/// Per-tier policy and capacity selection for the agent's two-level cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Replacement policy of the main-memory tier.
    pub memory_policy: PolicyKind,
    /// Replacement policy of the local-disk tier.
    pub disk_policy: PolicyKind,
    /// Capacity of the main-memory tier (paper: hundreds of MB).
    pub memory_capacity: Bytes,
    /// Capacity of the local-disk tier (paper: GBs).
    pub disk_capacity: Bytes,
}

impl Default for CacheConfig {
    /// The paper's configuration: LRU at both levels, 512 MiB of memory
    /// over 16 GiB of disk.
    fn default() -> Self {
        CacheConfig {
            memory_policy: PolicyKind::Lru,
            disk_policy: PolicyKind::Lru,
            memory_capacity: Bytes::mib(512),
            disk_capacity: Bytes::gib(16),
        }
    }
}

impl CacheConfig {
    /// Replaces both tiers' policies.
    pub fn with_policies(mut self, memory: PolicyKind, disk: PolicyKind) -> Self {
        self.memory_policy = memory;
        self.disk_policy = disk;
        self
    }

    /// Replaces both tiers' capacities.
    pub fn with_capacities(mut self, memory: Bytes, disk: Bytes) -> Self {
        self.memory_capacity = memory;
        self.disk_capacity = disk;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scfs_crypto::sha256;
    use sim_core::time::Clock;
    use std::sync::Arc;

    fn payload(bytes: &[u8]) -> Arc<[u8]> {
        Arc::from(bytes)
    }

    fn zeros(n: usize) -> Arc<[u8]> {
        Arc::from(vec![0u8; n])
    }

    #[test]
    fn put_get_round_trip_and_stats() {
        let mut cache = CacheTier::memory(Bytes::mib(1), PolicyKind::Lru, 1);
        let mut clock = Clock::new();
        let data = vec![1u8; 1000];
        let hash = sha256(&data);
        cache.put(&mut clock, "/f", payload(&data), Some(hash));
        assert_eq!(
            &cache.get(&mut clock, "/f", Some(&hash)).unwrap()[..],
            &data[..]
        );
        assert!(cache.get(&mut clock, "/missing", None).is_none());
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.bytes_hit, 1000);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn hits_share_the_payload_instead_of_copying() {
        let mut cache = CacheTier::memory(Bytes::mib(1), PolicyKind::Lru, 1);
        let mut clock = Clock::new();
        let data = zeros(4096);
        cache.put(&mut clock, "/f", data.clone(), None);
        let served = cache.get(&mut clock, "/f", None).unwrap();
        assert!(
            Arc::ptr_eq(&data, &served),
            "a hit must return the same allocation, not a copy"
        );
    }

    #[test]
    fn stale_entries_are_not_served() {
        let mut cache = CacheTier::disk(Bytes::mib(1), PolicyKind::Lru, 2);
        let mut clock = Clock::new();
        let old = vec![1u8; 100];
        cache.put(&mut clock, "/f", payload(&old), Some(sha256(&old)));
        // The coordination service now says the file has a newer hash.
        let new_hash = sha256(b"newer version");
        assert!(cache.get(&mut clock, "/f", Some(&new_hash)).is_none());
        // With no expectation the stale data is still retrievable (fresh
        // files that were never uploaded have no hash to validate).
        assert!(cache.get(&mut clock, "/f", None).is_some());
    }

    #[test]
    fn lru_eviction_respects_capacity() {
        let mut cache = CacheTier::memory(Bytes::new(300), PolicyKind::Lru, 3);
        let mut clock = Clock::new();
        cache.put(&mut clock, "/a", zeros(100), None);
        cache.put(&mut clock, "/b", zeros(100), None);
        cache.put(&mut clock, "/c", zeros(100), None);
        // Touch /a so /b becomes the LRU victim.
        assert!(cache.get(&mut clock, "/a", None).is_some());
        cache.put(&mut clock, "/d", zeros(100), None);
        assert!(cache.contains("/a", None));
        assert!(!cache.contains("/b", None));
        assert!(cache.contains("/d", None));
        assert!(cache.stats().evictions >= 1);
        assert!(cache.used_bytes().get() <= 300);
    }

    #[test]
    fn probe_reports_presence_and_refreshes_recency_without_stats() {
        let mut cache = CacheTier::memory(Bytes::new(300), PolicyKind::Lru, 11);
        let mut clock = Clock::new();
        cache.put(&mut clock, "/a", zeros(100), None);
        cache.put(&mut clock, "/b", zeros(100), None);
        cache.put(&mut clock, "/c", zeros(100), None);
        let before = clock.now();
        // Probing /a refreshes it, so /b becomes the LRU victim...
        assert!(cache.probe("/a", None));
        assert!(!cache.probe("/missing", None));
        // ...and a stale-hash probe does not match.
        assert!(!cache.probe("/a", Some(&sha256(b"other version"))));
        assert_eq!(clock.now(), before, "probe charges no latency");
        assert_eq!(cache.stats().hits, 0);
        assert_eq!(cache.stats().misses, 0);
        cache.put(&mut clock, "/d", zeros(100), None);
        assert!(cache.contains("/a", None));
        assert!(!cache.contains("/b", None), "/b was the LRU victim");
    }

    #[test]
    fn oversized_files_bypass_the_cache() {
        let mut cache = CacheTier::memory(Bytes::new(100), PolicyKind::Lru, 4);
        let mut clock = Clock::new();
        cache.put(&mut clock, "/huge", zeros(1000), None);
        assert!(!cache.contains("/huge", None));
        assert!(cache.is_empty());
    }

    #[test]
    fn oversized_puts_charge_no_transfer_latency() {
        let mut cache = CacheTier::disk(Bytes::new(100), PolicyKind::Lru, 12);
        let mut clock = Clock::new();
        let before = clock.now();
        // A bypassed put writes nothing, so it must not pay the (large)
        // upload latency of the payload it never stored.
        cache.put(&mut clock, "/huge", zeros(50 << 20), None);
        assert_eq!(clock.now(), before, "bypassed put charged latency");
    }

    #[test]
    fn oversized_put_over_an_entry_counts_an_invalidation() {
        let mut cache = CacheTier::memory(Bytes::new(100), PolicyKind::Lru, 13);
        let mut clock = Clock::new();
        cache.put(&mut clock, "/f", zeros(50), None);
        assert_eq!(cache.stats().invalidations, 0);
        // The oversized replacement bypasses the cache but still displaces
        // the stale entry — a staleness invalidation, not a capacity
        // eviction.
        cache.put(&mut clock, "/f", zeros(1000), None);
        assert!(!cache.contains("/f", None));
        assert_eq!(cache.used_bytes(), Bytes::ZERO);
        assert_eq!(cache.stats().invalidations, 1);
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn remove_frees_space_and_counts_an_invalidation() {
        let mut cache = CacheTier::memory(Bytes::new(200), PolicyKind::Lru, 5);
        let mut clock = Clock::new();
        cache.put(&mut clock, "/a", zeros(150), None);
        cache.remove("/a");
        assert_eq!(cache.used_bytes(), Bytes::ZERO);
        assert_eq!(cache.stats().invalidations, 1);
        assert_eq!(cache.stats().evictions, 0);
        cache.remove("/a"); // idempotent
        assert_eq!(cache.stats().invalidations, 1);
    }

    #[test]
    fn eviction_follows_strict_lru_order() {
        let mut cache = CacheTier::memory(Bytes::new(400), PolicyKind::Lru, 7);
        let mut clock = Clock::new();
        for path in ["/a", "/b", "/c", "/d"] {
            cache.put(&mut clock, path, zeros(100), None);
        }
        // Touch in the order c, a, d → b is the least recently used.
        for path in ["/c", "/a", "/d"] {
            assert!(cache.get(&mut clock, path, None).is_some());
        }
        cache.put(&mut clock, "/e", zeros(100), None);
        assert!(!cache.contains("/b", None), "/b was the LRU victim");
        // Next victim is /c (oldest surviving access).
        cache.put(&mut clock, "/f", zeros(100), None);
        assert!(!cache.contains("/c", None), "/c was the next victim");
        for survivor in ["/a", "/d", "/e", "/f"] {
            assert!(cache.contains(survivor, None), "{survivor} must survive");
        }
    }

    #[test]
    fn stats_count_hits_misses_and_evictions_exactly() {
        let mut cache = CacheTier::memory(Bytes::new(250), PolicyKind::Lru, 8);
        let mut clock = Clock::new();
        assert_eq!(cache.stats(), CacheStats::default());
        cache.put(&mut clock, "/a", zeros(100), None);
        cache.put(&mut clock, "/b", zeros(100), None);
        // 2 hits, 1 miss.
        assert!(cache.get(&mut clock, "/a", None).is_some());
        assert!(cache.get(&mut clock, "/b", None).is_some());
        assert!(cache.get(&mut clock, "/missing", None).is_none());
        // Inserting a third 100-byte entry evicts exactly one entry.
        cache.put(&mut clock, "/c", zeros(100), None);
        let stats = cache.stats();
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.bytes_evicted, 100);
    }

    #[test]
    fn stale_hash_lookup_counts_as_miss_and_entry_is_replaceable() {
        let mut cache = CacheTier::disk(Bytes::mib(1), PolicyKind::Lru, 9);
        let mut clock = Clock::new();
        let v1 = b"version one".to_vec();
        let h1 = sha256(&v1);
        cache.put(&mut clock, "/f", payload(&v1), Some(h1));

        // The anchor now advertises a newer hash: the cached entry is stale.
        let v2 = b"version two".to_vec();
        let h2 = sha256(&v2);
        assert!(cache.get(&mut clock, "/f", Some(&h2)).is_none());
        assert_eq!(cache.stats().misses, 1);

        // Re-inserting under the new hash replaces the entry in place.
        cache.put(&mut clock, "/f", payload(&v2), Some(h2));
        assert_eq!(cache.len(), 1);
        assert_eq!(
            &cache.get(&mut clock, "/f", Some(&h2)).unwrap()[..],
            &v2[..]
        );
        assert!(
            cache.get(&mut clock, "/f", Some(&h1)).is_none(),
            "old hash is gone"
        );
    }

    #[test]
    fn replacing_an_entry_does_not_leak_used_bytes() {
        let mut cache = CacheTier::memory(Bytes::new(1000), PolicyKind::Lru, 10);
        let mut clock = Clock::new();
        cache.put(&mut clock, "/f", zeros(400), None);
        cache.put(&mut clock, "/f", zeros(100), None);
        assert_eq!(cache.used_bytes(), Bytes::new(100));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn memory_is_faster_than_disk() {
        let mut mem = CacheTier::memory(Bytes::mib(64), PolicyKind::Lru, 6);
        let mut disk = CacheTier::disk(Bytes::mib(64), PolicyKind::Lru, 6);
        let mut mem_clock = Clock::new();
        let mut disk_clock = Clock::new();
        let data = zeros(64 * 1024);
        for i in 0..20 {
            mem.put(&mut mem_clock, &format!("/f{i}"), data.clone(), None);
            disk.put(&mut disk_clock, &format!("/f{i}"), data.clone(), None);
        }
        assert!(mem_clock.now() < disk_clock.now());
    }

    #[test]
    fn tinylfu_protects_hot_entries_from_a_scan() {
        let mut cache = CacheTier::memory(Bytes::new(300), PolicyKind::TinyLfu, 21);
        let mut clock = Clock::new();
        cache.put(&mut clock, "/hot-a", zeros(100), None);
        cache.put(&mut clock, "/hot-b", zeros(100), None);
        cache.put(&mut clock, "/hot-c", zeros(100), None);
        // Establish popularity.
        for _ in 0..10 {
            for p in ["/hot-a", "/hot-b", "/hot-c"] {
                assert!(cache.get(&mut clock, p, None).is_some());
            }
        }
        // A one-shot scan of cold keys must not displace the hot set.
        for i in 0..10 {
            cache.put(&mut clock, &format!("/scan-{i}"), zeros(100), None);
        }
        for p in ["/hot-a", "/hot-b", "/hot-c"] {
            assert!(cache.contains(p, None), "{p} was displaced by the scan");
        }
        assert!(cache.stats().admission_rejects >= 10);
    }

    #[test]
    fn gdsf_tier_evicts_large_cold_entries_first() {
        let mut cache = CacheTier::memory(Bytes::new(1000), PolicyKind::Gdsf, 22);
        let mut clock = Clock::new();
        cache.put(&mut clock, "/big", zeros(600), None);
        cache.put(&mut clock, "/small-a", zeros(200), None);
        cache.put(&mut clock, "/small-b", zeros(200), None);
        // All equally recent; the big entry has the lowest byte-normalized
        // priority and goes first.
        cache.put(&mut clock, "/new", zeros(300), None);
        assert!(!cache.contains("/big", None));
        assert!(cache.contains("/small-a", None));
        assert!(cache.contains("/small-b", None));
    }

    #[test]
    fn tiered_get_promotes_disk_hits_and_demotes_evictions() {
        let config = CacheConfig::default().with_capacities(Bytes::new(300), Bytes::new(10_000));
        let mut cache = TieredCache::new(&config, 31);
        let mut clock = Clock::new();
        let data = vec![7u8; 200];
        let hash = sha256(&data);
        cache.put(
            &mut clock,
            "/f",
            payload(&data),
            Some(hash),
            WriteMode::DiskOnly,
        );
        assert!(!cache.memory().contains("/f", None));

        // A read hits disk and promotes into memory...
        assert!(cache.get(&mut clock, "/f", Some(&hash)).is_some());
        assert!(cache.memory().contains("/f", Some(&hash)));
        assert_eq!(cache.stats().promotions, 1);

        // ...and filling memory demotes evictions to disk, where they are
        // still served without any upstream fetch.
        let other = vec![9u8; 200];
        let other_hash = sha256(&other);
        cache.put(
            &mut clock,
            "/g",
            payload(&other),
            Some(other_hash),
            WriteMode::CacheOnly,
        );
        assert!(!cache.memory().contains("/f", None), "/f was evicted");
        assert!(cache.disk().contains("/f", Some(&hash)));
        assert!(cache.get(&mut clock, "/f", Some(&hash)).is_some());
    }

    #[test]
    fn promotion_moves_the_arc_without_a_disk_copy() {
        let config = CacheConfig::default().with_capacities(Bytes::new(1000), Bytes::new(10_000));
        let mut cache = TieredCache::new(&config, 32);
        let mut clock = Clock::new();
        let data = zeros(500);
        let hash = sha256(&data);
        cache.put(
            &mut clock,
            "/f",
            data.clone(),
            Some(hash),
            WriteMode::DiskOnly,
        );
        let served = cache.get(&mut clock, "/f", Some(&hash)).unwrap();
        assert!(Arc::ptr_eq(&data, &served), "promotion must not copy");
        // The promoted copy in memory is the same allocation too.
        let from_mem = cache.get(&mut clock, "/f", Some(&hash)).unwrap();
        assert!(Arc::ptr_eq(&data, &from_mem));
    }

    #[test]
    fn demotion_of_a_promoted_entry_skips_the_redundant_disk_write() {
        let config = CacheConfig::default().with_capacities(Bytes::new(300), Bytes::new(10_000));
        let mut cache = TieredCache::new(&config, 33);
        let mut clock = Clock::new();
        let data = vec![1u8; 200];
        let hash = sha256(&data);
        cache.put(
            &mut clock,
            "/f",
            payload(&data),
            Some(hash),
            WriteMode::DiskOnly,
        );
        assert!(cache.get(&mut clock, "/f", Some(&hash)).is_some()); // promote
                                                                     // Evict /f from memory; its disk copy is intact, so no demotion
                                                                     // write is needed.
        cache.put(&mut clock, "/g", zeros(250), None, WriteMode::CacheOnly);
        assert_eq!(cache.stats().demotions, 0);
        assert!(cache.disk().contains("/f", Some(&hash)));
    }

    #[test]
    fn cache_only_routes_oversized_payloads_to_disk() {
        let config = CacheConfig::default().with_capacities(Bytes::new(100), Bytes::new(10_000));
        let mut cache = TieredCache::new(&config, 34);
        let mut clock = Clock::new();
        cache.put(&mut clock, "/big", zeros(500), None, WriteMode::CacheOnly);
        assert!(!cache.memory().contains("/big", None));
        assert!(cache.disk().contains("/big", None));
    }

    #[test]
    fn tiered_remove_clears_both_tiers() {
        let config = CacheConfig::default().with_capacities(Bytes::new(1000), Bytes::new(10_000));
        let mut cache = TieredCache::new(&config, 35);
        let mut clock = Clock::new();
        cache.put(&mut clock, "/f", zeros(100), None, WriteMode::Through);
        assert!(cache.contains("/f", None));
        cache.remove("/f");
        assert!(!cache.contains("/f", None));
        assert_eq!(cache.stats().memory.invalidations, 1);
        assert_eq!(cache.stats().disk.invalidations, 1);
    }

    #[test]
    fn policies_are_selectable_per_tier() {
        let config = CacheConfig::default().with_policies(PolicyKind::TinyLfu, PolicyKind::Gdsf);
        let cache = TieredCache::new(&config, 36);
        assert_eq!(cache.memory().policy_kind(), PolicyKind::TinyLfu);
        assert_eq!(cache.disk().policy_kind(), PolicyKind::Gdsf);
    }

    #[test]
    fn tiered_stats_merge_accumulates() {
        let mut a = TieredStats::default();
        let mut b = TieredStats::default();
        b.memory.hits = 3;
        b.disk.misses = 2;
        b.promotions = 1;
        a.merge(&b);
        a.merge(&b);
        assert_eq!(a.memory.hits, 6);
        assert_eq!(a.disk.misses, 4);
        assert_eq!(a.promotions, 2);
        assert!((TieredStats::hit_rate(&b.memory) - 1.0).abs() < 1e-12);
        assert_eq!(TieredStats::hit_rate(&CacheStats::default()), 0.0);
    }
}
