//! Cache tiers and the two-tier composition used by the agent.
//!
//! A [`CacheTier`] owns the resident entries of one level (memory or disk):
//! a slab of [`Arc<[u8]>`] payloads, a key index, the byte accounting and
//! the virtual-clock latency charging. Ordering decisions are delegated to
//! its [`CachePolicy`]. [`TieredCache`] composes a memory tier over a disk
//! tier and makes the paper's two-level behaviour (§2.5.1) first-class:
//!
//! * **promotion** — a disk hit moves the `Arc` into the memory tier,
//!   charging one memory insert (request latency, no payload copy);
//! * **demotion** — entries evicted from memory under capacity pressure are
//!   written to the disk tier instead of being dropped, so a later read is
//!   a disk hit rather than a cloud download.
//!
//! Payloads are `Arc<[u8]>` end to end: hits, promotions and demotions move
//! reference counts, never chunk bytes.

use std::collections::HashMap;
use std::sync::Arc;

use scfs_crypto::ContentHash;
use sim_core::latency::LatencyProfile;
use sim_core::rng::DetRng;
use sim_core::time::Clock;
use sim_core::units::Bytes;

use super::policy::{CachePolicy, EntryId, PolicyKind};
use super::CacheConfig;
use crate::invariant::InvariantViolation;

/// Statistics of one cache tier.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a usable entry.
    pub hits: u64,
    /// Lookups that missed (absent or stale).
    pub misses: u64,
    /// Entries evicted by the capacity policy to make room.
    pub evictions: u64,
    /// Entries dropped for non-capacity reasons: displaced by an oversized
    /// replacement that bypassed the tier, or removed on unlink.
    pub invalidations: u64,
    /// Payload bytes served by hits.
    pub bytes_hit: u64,
    /// Payload bytes evicted by the capacity policy.
    pub bytes_evicted: u64,
    /// Inserts refused by the admission policy under capacity pressure.
    pub admission_rejects: u64,
    /// Bookkeeping steps performed by the replacement policy; flat per
    /// eviction for an O(1) policy regardless of resident entry count.
    pub policy_steps: u64,
}

/// One resident entry: its key (owned here, surrendered on eviction so the
/// victim key is never cloned), payload and version hash.
#[derive(Debug)]
struct Entry {
    key: String,
    data: Arc<[u8]>,
    hash: Option<ContentHash>,
}

/// An entry evicted from a tier, handed back so the caller can demote it.
#[derive(Debug)]
pub struct Evicted {
    /// The cache key.
    pub key: String,
    /// The payload (moved, not copied).
    pub data: Arc<[u8]>,
    /// The version hash the payload corresponds to.
    pub hash: Option<ContentHash>,
}

/// FNV-1a over the key, feeding the policy's admission filter.
fn hash_key(key: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in key.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One cache level: bounded by total payload bytes, charging its latency
/// profile on every data access, with replacement delegated to a pluggable
/// [`CachePolicy`].
#[derive(Debug)]
pub struct CacheTier {
    name: &'static str,
    capacity: Bytes,
    used: u64,
    index: HashMap<String, EntryId>,
    slots: Vec<Option<Entry>>,
    free: Vec<EntryId>,
    policy: Box<dyn CachePolicy>,
    latency: LatencyProfile,
    rng: DetRng,
    stats: CacheStats,
}

impl CacheTier {
    /// Creates a main-memory tier.
    pub fn memory(capacity: Bytes, policy: PolicyKind, seed: u64) -> Self {
        CacheTier::new(
            "memory",
            capacity,
            policy,
            LatencyProfile::main_memory(),
            seed,
        )
    }

    /// Creates a local-disk tier.
    pub fn disk(capacity: Bytes, policy: PolicyKind, seed: u64) -> Self {
        CacheTier::new("disk", capacity, policy, LatencyProfile::local_disk(), seed)
    }

    fn new(
        name: &'static str,
        capacity: Bytes,
        policy: PolicyKind,
        latency: LatencyProfile,
        seed: u64,
    ) -> Self {
        CacheTier {
            name,
            capacity,
            used: 0,
            index: HashMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            policy: policy.build(capacity.get()),
            latency,
            rng: DetRng::new(seed),
            stats: CacheStats::default(),
        }
    }

    /// The tier name (`"memory"` or `"disk"`).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The replacement policy this tier runs.
    pub fn policy_kind(&self) -> PolicyKind {
        self.policy.kind()
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> Bytes {
        self.capacity
    }

    /// Bytes currently cached.
    pub fn used_bytes(&self) -> Bytes {
        Bytes::new(self.used)
    }

    /// Access statistics (with the policy's step counter folded in).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            policy_steps: self.policy.steps(),
            ..self.stats
        }
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the tier is empty.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Appends any violated byte-accounting invariants to `out`: `used` is
    /// exactly the sum of resident payload sizes, never exceeds capacity,
    /// and the key index covers exactly the occupied slots.
    pub fn check_invariants(&self, out: &mut Vec<InvariantViolation>) {
        let resident: u64 = self
            .slots
            .iter()
            .flatten()
            .map(|entry| entry.data.len() as u64)
            .sum();
        if resident != self.used {
            out.push(InvariantViolation::new(
                "cache.used-bytes-accounting",
                format!(
                    "{} tier: used counter {} but resident payloads total {}",
                    self.name, self.used, resident
                ),
            ));
        }
        if self.used > self.capacity.get() {
            out.push(InvariantViolation::new(
                "cache.capacity-exceeded",
                format!(
                    "{} tier: used {} exceeds capacity {}",
                    self.name,
                    self.used,
                    self.capacity.get()
                ),
            ));
        }
        let occupied = self.slots.iter().flatten().count();
        if occupied != self.index.len() {
            out.push(InvariantViolation::new(
                "cache.index-slot-mismatch",
                format!(
                    "{} tier: {} occupied slots but {} indexed keys",
                    self.name,
                    occupied,
                    self.index.len()
                ),
            ));
        }
    }

    fn charge(&mut self, clock: &mut Clock, upload: Bytes, download: Bytes) {
        let latency = self.latency.sample_op(&mut self.rng, upload, download);
        clock.advance(latency);
    }

    fn fresh(entry: &Entry, expected_hash: Option<&ContentHash>) -> bool {
        match expected_hash {
            None => true,
            Some(h) => entry.hash.as_ref() == Some(h),
        }
    }

    /// Looks up `key` and returns its payload if the resident entry matches
    /// `expected_hash` (a `None` expectation accepts any entry — used for
    /// freshly created files that have no cloud version yet). A hit charges
    /// the tier's read latency for the payload size; the payload itself is
    /// an `Arc` clone, never a byte copy.
    pub fn get(
        &mut self,
        clock: &mut Clock,
        key: &str,
        expected_hash: Option<&ContentHash>,
    ) -> Option<Arc<[u8]>> {
        self.get_with_hash(clock, key, expected_hash)
            .map(|(d, _)| d)
    }

    /// As [`CacheTier::get`], also returning the stored version hash (the
    /// promotion path needs it to tag the promoted entry correctly).
    pub fn get_with_hash(
        &mut self,
        clock: &mut Clock,
        key: &str,
        expected_hash: Option<&ContentHash>,
    ) -> Option<(Arc<[u8]>, Option<ContentHash>)> {
        // Every lookup feeds the admission filter, so frequency estimates
        // cover keys that are not (or no longer) resident.
        self.policy.record_access(hash_key(key));
        // An index entry pointing at a vacated slot would be an invariant
        // breach; it degrades to a miss rather than a panic on the read path.
        let hit = self.index.get(key).copied().and_then(|id| {
            let entry = self.slots.get(id as usize)?.as_ref()?;
            Self::fresh(entry, expected_hash).then(|| (id, entry.data.clone(), entry.hash))
        });
        match hit {
            Some((id, data, hash)) => {
                self.policy.on_access(id);
                self.stats.hits += 1;
                self.stats.bytes_hit += data.len() as u64;
                self.charge(clock, Bytes::ZERO, Bytes::new(data.len() as u64));
                Some((data, hash))
            }
            None => {
                self.stats.misses += 1;
                self.charge(clock, Bytes::ZERO, Bytes::ZERO);
                None
            }
        }
    }

    /// Inserts (or replaces) `key` with `data` tagged by `hash`, charging
    /// the tier's write latency for the payload size and evicting entries
    /// as the policy directs. Evicted entries are returned so the caller
    /// can demote them to a lower tier.
    pub fn put(
        &mut self,
        clock: &mut Clock,
        key: &str,
        data: Arc<[u8]>,
        hash: Option<ContentHash>,
    ) -> Vec<Evicted> {
        self.insert(clock, key, data, hash, true)
    }

    /// Inserts an entry whose payload is already resident in a lower tier —
    /// the promotion path. The `Arc` is moved, so only the tier's
    /// per-request insert latency is charged, not a payload transfer.
    pub fn put_moved(
        &mut self,
        clock: &mut Clock,
        key: &str,
        data: Arc<[u8]>,
        hash: Option<ContentHash>,
    ) -> Vec<Evicted> {
        self.insert(clock, key, data, hash, false)
    }

    fn insert(
        &mut self,
        clock: &mut Clock,
        key: &str,
        data: Arc<[u8]>,
        hash: Option<ContentHash>,
        charge_payload: bool,
    ) -> Vec<Evicted> {
        let size = data.len() as u64;
        // A payload larger than the whole tier bypasses it: no bytes are
        // written, so no transfer latency is charged. The entry it would
        // have replaced still has to go (it is stale) — that loss is an
        // invalidation, not a capacity eviction.
        if size > self.capacity.get() {
            if self.remove_resident(key).is_some() {
                self.stats.invalidations += 1;
            }
            return Vec::new();
        }
        if charge_payload {
            self.charge(clock, Bytes::new(size), Bytes::ZERO);
        } else {
            self.charge(clock, Bytes::ZERO, Bytes::ZERO);
        }
        let key_hash = hash_key(key);
        let mut evicted = Vec::new();
        // Single index lookup decides replace-in-place vs fresh insert; the
        // old implementation hashed the key up to three times per put
        // (remove, evict loop, insert).
        if let Some(id) = self.index.get(key).copied() {
            if let Some(slot) = self.slots.get_mut(id as usize).and_then(|s| s.as_mut()) {
                // Replacing in place: retire the old payload from the policy
                // and the byte accounting, make room, then re-register. While
                // the entry is out of the policy it cannot be a victim.
                self.used -= slot.data.len() as u64;
                slot.data = data;
                slot.hash = hash;
                self.policy.on_remove(id);
                while self.used + size > self.capacity.get() {
                    match self.evict_one() {
                        Some(e) => evicted.push(e),
                        None => break,
                    }
                }
                self.used += size;
                self.policy.on_insert(id, key_hash, size);
                return evicted;
            }
            // An index entry naming a vacated slot is an invariant breach;
            // drop it and fall through to a fresh insert instead of
            // panicking on the write path.
            self.index.remove(key);
        }
        // Under capacity pressure the admission policy may refuse the
        // newcomer instead of displacing a more valuable victim.
        if self.used + size > self.capacity.get() && !self.policy.admit(key_hash, size) {
            self.stats.admission_rejects += 1;
            return evicted;
        }
        while self.used + size > self.capacity.get() {
            match self.evict_one() {
                Some(e) => evicted.push(e),
                None => break,
            }
        }
        let entry = Entry {
            key: key.to_string(),
            data,
            hash,
        };
        let id = match self.free.pop() {
            Some(id) => {
                self.slots[id as usize] = Some(entry);
                id
            }
            None => {
                self.slots.push(Some(entry));
                (self.slots.len() - 1) as EntryId
            }
        };
        self.index.insert(key.to_string(), id);
        self.used += size;
        self.policy.on_insert(id, key_hash, size);
        evicted
    }

    /// Removes `key` from the tier (e.g. on unlink); counted as an
    /// invalidation, not an eviction.
    pub fn remove(&mut self, key: &str) {
        if self.remove_resident(key).is_some() {
            self.stats.invalidations += 1;
        }
    }

    /// Unindexes and frees the entry under `key`, if any, without touching
    /// the stats.
    fn remove_resident(&mut self, key: &str) -> Option<Entry> {
        let id = self.index.remove(key)?;
        // A vacated slot behind a live index entry degrades to "nothing to
        // remove" (the index entry is already gone).
        let entry = self.slots.get_mut(id as usize).and_then(|s| s.take())?;
        self.policy.on_remove(id);
        self.used -= entry.data.len() as u64;
        self.free.push(id);
        Some(entry)
    }

    /// Evicts the policy's victim, surrendering its owned key and payload —
    /// no clones on the eviction path.
    fn evict_one(&mut self) -> Option<Evicted> {
        let id = self.policy.victim()?;
        let Some(entry) = self.slots.get_mut(id as usize).and_then(|s| s.take()) else {
            // A victim naming a vacated slot would loop forever if retried;
            // retire it from the policy and report no eviction.
            self.policy.on_remove(id);
            return None;
        };
        self.policy.on_remove(id);
        self.index.remove(&entry.key);
        self.used -= entry.data.len() as u64;
        self.free.push(id);
        self.stats.evictions += 1;
        self.stats.bytes_evicted += entry.data.len() as u64;
        Some(Evicted {
            key: entry.key,
            data: entry.data,
            hash: entry.hash,
        })
    }

    /// Presence probe for the lazy read path: whether a usable entry exists,
    /// refreshing its recency so that chunks a transfer plan is about to
    /// consume are not evicted between planning and execution. No latency is
    /// charged and no hit/miss is counted — this is a planning query, not a
    /// data access.
    pub fn probe(&mut self, key: &str, expected_hash: Option<&ContentHash>) -> bool {
        let Some(id) = self.index.get(key).copied() else {
            return false;
        };
        let fresh = self
            .slots
            .get(id as usize)
            .and_then(|s| s.as_ref())
            .is_some_and(|entry| Self::fresh(entry, expected_hash));
        if fresh {
            self.policy.on_access(id);
        }
        fresh
    }

    /// Whether the tier holds an entry for `key` matching `expected_hash`
    /// (no latency charged, no recency refreshed; accounting only).
    pub fn contains(&self, key: &str, expected_hash: Option<&ContentHash>) -> bool {
        self.index
            .get(key)
            .and_then(|&id| self.slots.get(id as usize)?.as_ref())
            .is_some_and(|entry| Self::fresh(entry, expected_hash))
    }
}

/// How a [`TieredCache::put`] routes the payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteMode {
    /// Write both tiers (a durability spill that should also stay hot).
    Through,
    /// Write the memory tier only; the payload reaches disk later by
    /// demotion. Payloads larger than the memory tier go straight to disk.
    CacheOnly,
    /// Write the disk tier only (durability without polluting memory).
    DiskOnly,
}

/// Combined statistics of a two-tier cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TieredStats {
    /// The memory tier's counters.
    pub memory: CacheStats,
    /// The disk tier's counters.
    pub disk: CacheStats,
    /// Disk hits promoted into the memory tier.
    pub promotions: u64,
    /// Memory evictions demoted into the disk tier.
    pub demotions: u64,
}

impl TieredStats {
    /// Merges another snapshot into this one (fleet-level aggregation).
    pub fn merge(&mut self, other: &TieredStats) {
        fn add(a: &mut CacheStats, b: &CacheStats) {
            a.hits += b.hits;
            a.misses += b.misses;
            a.evictions += b.evictions;
            a.invalidations += b.invalidations;
            a.bytes_hit += b.bytes_hit;
            a.bytes_evicted += b.bytes_evicted;
            a.admission_rejects += b.admission_rejects;
            a.policy_steps += b.policy_steps;
        }
        add(&mut self.memory, &other.memory);
        add(&mut self.disk, &other.disk);
        self.promotions += other.promotions;
        self.demotions += other.demotions;
    }

    /// Hit rate of a tier's counters, by lookup count (0.0 when idle).
    pub fn hit_rate(stats: &CacheStats) -> f64 {
        let total = stats.hits + stats.misses;
        if total == 0 {
            0.0
        } else {
            stats.hits as f64 / total as f64
        }
    }
}

/// The agent's two-level cache: a memory tier over a disk tier with
/// first-class promotion and demotion.
#[derive(Debug)]
pub struct TieredCache {
    memory: CacheTier,
    disk: CacheTier,
    promotions: u64,
    demotions: u64,
}

impl TieredCache {
    /// Builds both tiers from the configuration.
    pub fn new(config: &CacheConfig, seed: u64) -> Self {
        TieredCache {
            memory: CacheTier::memory(config.memory_capacity, config.memory_policy, seed ^ 0x11),
            disk: CacheTier::disk(config.disk_capacity, config.disk_policy, seed ^ 0x22),
            promotions: 0,
            demotions: 0,
        }
    }

    /// The memory tier.
    pub fn memory(&self) -> &CacheTier {
        &self.memory
    }

    /// The disk tier.
    pub fn disk(&self) -> &CacheTier {
        &self.disk
    }

    /// Appends any violated byte-accounting invariants of both tiers to
    /// `out` (see [`CacheTier::check_invariants`]).
    pub fn check_invariants(&self, out: &mut Vec<InvariantViolation>) {
        self.memory.check_invariants(out);
        self.disk.check_invariants(out);
    }

    /// Combined statistics snapshot.
    pub fn stats(&self) -> TieredStats {
        TieredStats {
            memory: self.memory.stats(),
            disk: self.disk.stats(),
            promotions: self.promotions,
            demotions: self.demotions,
        }
    }

    /// Two-level lookup: memory first, then disk. A disk hit is promoted
    /// into the memory tier by moving the `Arc` (one insert charge, no
    /// payload copy); entries the promotion pushes out of memory are
    /// demoted back to disk.
    pub fn get(
        &mut self,
        clock: &mut Clock,
        key: &str,
        expected_hash: Option<&ContentHash>,
    ) -> Option<Arc<[u8]>> {
        if let Some(data) = self.memory.get(clock, key, expected_hash) {
            return Some(data);
        }
        let (data, stored_hash) = self.disk.get_with_hash(clock, key, expected_hash)?;
        self.promotions += 1;
        let evicted = self.memory.put_moved(clock, key, data.clone(), stored_hash);
        self.demote(clock, evicted);
        Some(data)
    }

    /// Inserts `key` into the tier(s) selected by `mode`. Memory evictions
    /// caused by the insert are demoted to disk.
    pub fn put(
        &mut self,
        clock: &mut Clock,
        key: &str,
        data: Arc<[u8]>,
        hash: Option<ContentHash>,
        mode: WriteMode,
    ) {
        match mode {
            WriteMode::Through => {
                self.disk.put(clock, key, data.clone(), hash);
                let evicted = self.memory.put(clock, key, data, hash);
                self.demote(clock, evicted);
            }
            WriteMode::CacheOnly => {
                if data.len() as u64 > self.memory.capacity().get() {
                    self.disk.put(clock, key, data, hash);
                } else {
                    let evicted = self.memory.put(clock, key, data, hash);
                    self.demote(clock, evicted);
                }
            }
            WriteMode::DiskOnly => {
                self.disk.put(clock, key, data, hash);
            }
        }
    }

    /// Writes memory-tier evictions into the disk tier, charging a real
    /// disk write (the bytes genuinely move from RAM to disk). Payloads the
    /// disk already holds under the same version hash are skipped — in
    /// particular, promoted entries falling back out of memory, whose disk
    /// copy never went away. Disk evictions caused by a demotion leave the
    /// cache for good.
    fn demote(&mut self, clock: &mut Clock, evicted: Vec<Evicted>) {
        for e in evicted {
            if e.hash.is_some() && self.disk.contains(&e.key, e.hash.as_ref()) {
                continue;
            }
            self.demotions += 1;
            self.disk.put(clock, &e.key, e.data, e.hash);
        }
    }

    /// Presence probe across both tiers (no latency, no hit/miss counted);
    /// refreshes recency in whichever tier holds the entry.
    pub fn probe(&mut self, key: &str, expected_hash: Option<&ContentHash>) -> bool {
        let in_memory = self.memory.probe(key, expected_hash);
        let on_disk = self.disk.probe(key, expected_hash);
        in_memory || on_disk
    }

    /// Whether either tier holds a usable entry (accounting only).
    pub fn contains(&self, key: &str, expected_hash: Option<&ContentHash>) -> bool {
        self.memory.contains(key, expected_hash) || self.disk.contains(key, expected_hash)
    }

    /// Removes `key` from both tiers (e.g. on unlink).
    pub fn remove(&mut self, key: &str) {
        self.memory.remove(key);
        self.disk.remove(key);
    }
}
