//! The file-system interface shared by SCFS and the baseline systems.
//!
//! The paper evaluates SCFS against S3FS, S3QL and a local FUSE-J file
//! system by driving all of them through the same POSIX-like calls. In the
//! reproduction every system implements [`FileSystem`], and the workload
//! generators in the `workloads` crate are written once against this trait.
//!
//! Each file-system instance owns its client's virtual clock: operations
//! advance it by however long they would have taken, and the workload
//! harness measures elapsed virtual time between two clock readings.

use sim_core::time::{Clock, SimInstant};

use crate::durability::DurabilityLevel;
use crate::error::ScfsError;
use crate::types::{FileHandle, FileMetadata, OpenFlags};

/// A POSIX-like file system driven on virtual time.
pub trait FileSystem {
    /// Human-readable name used in result tables (e.g. `"SCFS-CoC-B"`).
    fn name(&self) -> String;

    /// The client's virtual clock.
    fn clock(&self) -> &Clock;

    /// The current virtual instant of this client.
    fn now(&self) -> SimInstant {
        self.clock().now()
    }

    /// Advances the client's clock by idle (think) time; used by workloads to
    /// simulate user behaviour such as polling intervals.
    fn sleep(&mut self, duration: sim_core::time::SimDuration);

    /// Opens (or creates, with the right flags) a file and returns a handle.
    fn open(&mut self, path: &str, flags: OpenFlags) -> Result<FileHandle, ScfsError>;

    /// Reads up to `len` bytes at `offset` from an open file.
    fn read(&mut self, handle: FileHandle, offset: u64, len: usize) -> Result<Vec<u8>, ScfsError>;

    /// Current size in bytes of an open file, served from the handle's own
    /// state — no metadata round-trip. `read_file`/`copy_file` use this
    /// instead of a second `stat` after `open`.
    fn handle_size(&mut self, handle: FileHandle) -> Result<u64, ScfsError>;

    /// Writes `data` at `offset` in an open file, returning the bytes written.
    fn write(&mut self, handle: FileHandle, offset: u64, data: &[u8]) -> Result<usize, ScfsError>;

    /// Truncates an open file to `size` bytes.
    fn truncate(&mut self, handle: FileHandle, size: u64) -> Result<(), ScfsError>;

    /// Flushes an open file to the local disk (durability level 1 of Table 1).
    fn fsync(&mut self, handle: FileHandle) -> Result<(), ScfsError>;

    /// Promotes an open file's contents to the highest durability level the
    /// system provides and returns the level reached (Table 1; see
    /// [`crate::durability`]). Cloud-backed systems block until the object's
    /// version commit — pending in the background or started by this call —
    /// has landed; systems without a cloud tier stop at the local disk.
    ///
    /// The default covers local systems: flush to disk, report level 1.
    fn sync(&mut self, handle: FileHandle) -> Result<DurabilityLevel, ScfsError> {
        self.fsync(handle)?;
        Ok(DurabilityLevel::LocalDisk)
    }

    /// Closes an open file, synchronizing data and metadata according to the
    /// system's mode (consistency-on-close).
    fn close(&mut self, handle: FileHandle) -> Result<(), ScfsError>;

    /// Retrieves the metadata of a path (the `stat` call).
    fn stat(&mut self, path: &str) -> Result<FileMetadata, ScfsError>;

    /// Creates a directory.
    fn mkdir(&mut self, path: &str) -> Result<(), ScfsError>;

    /// Lists the entries of a directory.
    fn readdir(&mut self, path: &str) -> Result<Vec<String>, ScfsError>;

    /// Removes a file (marks it deleted; space is reclaimed by the GC).
    fn unlink(&mut self, path: &str) -> Result<(), ScfsError>;

    /// Renames a file or directory.
    fn rename(&mut self, from: &str, to: &str) -> Result<(), ScfsError>;

    /// Grants `permission` on `path` to `user` (the `setfacl` call, §2.6).
    fn setfacl(
        &mut self,
        path: &str,
        user: &cloud_store::types::AccountId,
        permission: cloud_store::types::Permission,
    ) -> Result<(), ScfsError>;

    /// Reads the ACL of `path` (the `getfacl` call).
    fn getfacl(&mut self, path: &str) -> Result<cloud_store::types::Acl, ScfsError>;

    /// Convenience: copies a whole file within the file system
    /// (open/read/create/write/close), as the Filebench copy-files workload
    /// does. The source size comes from the open handle, not a second
    /// metadata round-trip.
    fn copy_file(&mut self, from: &str, to: &str) -> Result<(), ScfsError> {
        let src = self.open(from, OpenFlags::read_only())?;
        let size = self.handle_size(src)?;
        let data = self.read(src, 0, size as usize)?;
        self.close(src)?;
        let dst = self.open(to, OpenFlags::create_truncate())?;
        self.write(dst, 0, &data)?;
        self.close(dst)?;
        Ok(())
    }

    /// Convenience: writes a whole file in one open/write/close sequence.
    fn write_file(&mut self, path: &str, data: &[u8]) -> Result<(), ScfsError> {
        let h = self.open(path, OpenFlags::create_truncate())?;
        self.write(h, 0, data)?;
        self.close(h)?;
        Ok(())
    }

    /// Convenience: reads a whole file in one open/read/close sequence. The
    /// size comes from the open handle, not a second metadata round-trip.
    fn read_file(&mut self, path: &str) -> Result<Vec<u8>, ScfsError> {
        let h = self.open(path, OpenFlags::read_only())?;
        let size = self.handle_size(h)?;
        let data = self.read(h, 0, size as usize)?;
        self.close(h)?;
        Ok(data)
    }
}
