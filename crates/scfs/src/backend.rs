//! Storage backends: single cloud (AWS) and cloud-of-clouds (CoC).
//!
//! SCFS provides a pluggable backplane (paper §3.2, Figure 5): file data can
//! go to a single storage cloud (Amazon S3 in the paper's AWS backend) or to
//! a DepSky cloud-of-clouds. Both are hidden behind [`FileStorage`], whose
//! operations are what the storage service of the agent needs on the chunked
//! data path:
//!
//! * write a new immutable version — upload the *dirty* chunks of the file
//!   plus a small [`ChunkMap`] manifest stored under its root hash (the
//!   storage-service half of the consistency-anchor algorithm);
//! * read the manifest with a given root hash, and individual chunks by
//!   content hash (only the chunks a reader is missing);
//! * delete old versions chunk-by-chunk — a chunk is reclaimed only once no
//!   retained version references it, so identical chunks are shared
//!   (deduplicated) across versions;
//! * propagate ACL changes to every stored object of a file.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use cloud_store::error::StorageError;
use cloud_store::store::{ObjectStore, OpCtx};
use cloud_store::types::Acl;
use depsky::register::DepSkyClient;
use parking_lot::Mutex;
use scfs_crypto::{sha256, to_hex, ContentHash};

use crate::error::ScfsError;
use crate::transfer::{execute_plan, TransferOptions, TransferPlan};
use crate::types::ChunkMap;

/// Transfer accounting returned by a successful [`FileStorage::write_version`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteOutcome {
    /// Root hash of the written version (hash of the encoded [`ChunkMap`]);
    /// this is the `hash` the consistency anchor stores.
    pub root_hash: ContentHash,
    /// Chunks actually uploaded (dirty chunks not already stored).
    pub chunks_uploaded: u64,
    /// Payload bytes handed to the backend: the dirty chunks plus the
    /// manifest. This counts logical (plaintext) bytes — the CoC backend
    /// additionally pays its replication/erasure-coding overhead (~1.5× with
    /// the DepSky-CA preferred quorum) on the wire, which is accounted in
    /// the per-cloud [`cloud_store::CloudMetrics`], not here.
    pub bytes_uploaded: u64,
    /// Parallel waves the chunk uploads took (0 when no chunk moved); the
    /// caller's clock advanced by roughly this many chunk-upload latencies.
    pub waves: u64,
}

/// One stored version of an object: its root hash and chunk map. Backends
/// keep these per object id so the garbage collector can reclaim per-chunk
/// without listing the cloud.
#[derive(Debug, Clone)]
struct StoredVersion {
    root: ContentHash,
    map: ChunkMap,
}

/// Registry of versions written through one backend instance, shared by both
/// backends: object id → versions, newest last.
#[derive(Debug, Default)]
struct VersionRegistry {
    versions: HashMap<String, Vec<StoredVersion>>,
}

impl VersionRegistry {
    /// Records a newly written version.
    fn push(&mut self, id: &str, root: ContentHash, map: ChunkMap) {
        self.versions
            .entry(id.to_string())
            .or_default()
            .push(StoredVersion { root, map });
    }

    /// Whether this registry has any record of `id`.
    fn tracks(&self, id: &str) -> bool {
        self.versions.contains_key(id)
    }

    /// Every chunk hash currently referenced by any version of `id`.
    fn live_chunks(&self, id: &str) -> HashSet<ContentHash> {
        self.versions
            .get(id)
            .map(|vs| {
                vs.iter()
                    .flat_map(|v| v.map.chunks().iter().copied())
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Every blob (manifests first, then chunks, deduplicated) currently
    /// referenced by any version of `id` — the ACL-propagation targets.
    fn live_objects(&self, id: &str) -> Vec<ContentHash> {
        let versions = self.versions.get(id).map(Vec::as_slice).unwrap_or(&[]);
        let mut objects = Vec::new();
        let mut seen = HashSet::new();
        for version in versions {
            if seen.insert(version.root) {
                objects.push(version.root);
            }
        }
        for version in versions {
            for chunk in version.map.chunks() {
                if seen.insert(*chunk) {
                    objects.push(*chunk);
                }
            }
        }
        objects
    }

    /// Drops all but the newest `keep` versions of `id`. The returned
    /// manifests and chunks are exactly the objects no retained version
    /// references any more — versions can share both chunks *and* manifests
    /// (two identical versions have the same root hash), so anything still
    /// referenced by a kept version must survive.
    fn prune(&mut self, id: &str, keep: usize) -> PruneResult {
        let list = match self.versions.get_mut(id) {
            Some(list) if list.len() > keep => list,
            _ => return PruneResult::default(),
        };
        let cut = list.len() - keep;
        let dropped: Vec<StoredVersion> = list.drain(..cut).collect();
        let kept_chunks: HashSet<ContentHash> = list
            .iter()
            .flat_map(|v| v.map.chunks().iter().copied())
            .collect();
        let kept_roots: HashSet<ContentHash> = list.iter().map(|v| v.root).collect();
        let mut result = PruneResult {
            removed: dropped.len(),
            ..PruneResult::default()
        };
        let mut seen_chunks = HashSet::new();
        let mut seen_roots = HashSet::new();
        for version in &dropped {
            if !kept_roots.contains(&version.root) && seen_roots.insert(version.root) {
                result.manifests.push(version.root);
            }
            for chunk in version.map.chunks() {
                if !kept_chunks.contains(chunk) && seen_chunks.insert(*chunk) {
                    result.chunks.push(*chunk);
                }
            }
        }
        result
    }

    /// Removes every version of `id`, returning its unique manifests and
    /// chunks.
    fn remove_all(&mut self, id: &str) -> PruneResult {
        let all = self.versions.remove(id).unwrap_or_default();
        let mut result = PruneResult {
            removed: all.len(),
            ..PruneResult::default()
        };
        let mut seen_chunks = HashSet::new();
        let mut seen_roots = HashSet::new();
        for version in &all {
            if seen_roots.insert(version.root) {
                result.manifests.push(version.root);
            }
            for chunk in version.map.chunks() {
                if seen_chunks.insert(*chunk) {
                    result.chunks.push(*chunk);
                }
            }
        }
        result
    }
}

/// Objects made unreferenced by a registry prune.
#[derive(Debug, Default)]
struct PruneResult {
    /// Number of versions dropped.
    removed: usize,
    /// Manifest root hashes to delete.
    manifests: Vec<ContentHash>,
    /// Chunk hashes to delete.
    chunks: Vec<ContentHash>,
}

/// Chunked, content-addressed versioned storage — the "SS" of the
/// consistency-anchor algorithm.
pub trait FileStorage: Send + Sync {
    /// Short backend label for result tables (`"AWS"` or `"CoC"`).
    fn label(&self) -> &'static str;

    /// Stores a new version of the object identified by `id`: uploads the
    /// chunks of `data` (laid out by `map`) that are not already stored, then
    /// commits the encoded manifest under its root hash. Chunks this backend
    /// instance knows are live are skipped (dedup); when the instance has no
    /// record of `id` (a fresh mount), chunks present in `prev` are trusted
    /// as stored. Newly written objects are tagged with `acl` when given, so
    /// collaborators can read them without a separate ACL pass. `is_new`
    /// hints that the object was never written before (lets the CoC backend
    /// skip its metadata-read phase on file creation). The dirty chunks move
    /// through the transfer engine, at most `opts.max_parallel` at a time.
    #[allow(clippy::too_many_arguments)]
    fn write_version(
        &self,
        ctx: &mut OpCtx<'_>,
        id: &str,
        data: &[u8],
        map: &ChunkMap,
        prev: Option<&ChunkMap>,
        is_new: bool,
        acl: Option<&Acl>,
        opts: &TransferOptions,
    ) -> Result<WriteOutcome, ScfsError>;

    /// Reads the chunk map of the version of `id` whose root hash is `hash`.
    /// Returns a transient not-found error while the version is not yet
    /// visible — the caller runs the consistency-anchor retry loop.
    fn read_manifest(
        &self,
        ctx: &mut OpCtx<'_>,
        id: &str,
        hash: &ContentHash,
    ) -> Result<ChunkMap, ScfsError>;

    /// Reads one chunk of `id` by content hash, verifying it.
    fn read_chunk(
        &self,
        ctx: &mut OpCtx<'_>,
        id: &str,
        hash: &ContentHash,
    ) -> Result<Vec<u8>, ScfsError>;

    /// Reads and reassembles the whole version of `id` whose root hash is
    /// `hash` (manifest plus every chunk), fetching the chunks through the
    /// transfer engine at most `opts.max_parallel` at a time.
    fn read_version(
        &self,
        ctx: &mut OpCtx<'_>,
        id: &str,
        hash: &ContentHash,
        opts: &TransferOptions,
    ) -> Result<Vec<u8>, ScfsError> {
        let map = self.read_manifest(ctx, id, hash)?;
        let plan = TransferPlan::fetch(&map, 0..map.chunk_count(), |_| false);
        let (chunks, _) = execute_plan(ctx, opts, &plan, |job, fork_ctx| {
            self.read_chunk(fork_ctx, id, &job.hash)
        })?;
        // The plan is hash-deduplicated: one fetched chunk fills every
        // position holding the same content.
        let by_hash: HashMap<&ContentHash, &Vec<u8>> = plan
            .jobs()
            .iter()
            .map(|job| &job.hash)
            .zip(chunks.iter())
            .collect();
        let mut data = vec![0u8; map.file_len() as usize];
        for (index, chunk_hash) in map.chunks().iter().enumerate() {
            let chunk = by_hash.get(chunk_hash).ok_or(StorageError::NotFound {
                key: id.to_string(),
            })?;
            let range = map.byte_range(index);
            if chunk.len() != range.len() {
                return Err(StorageError::IntegrityViolation {
                    key: id.to_string(),
                }
                .into());
            }
            data[range].copy_from_slice(chunk);
        }
        Ok(data)
    }

    /// Deletes all but the newest `keep` versions of `id`, reclaiming the
    /// chunks no retained version references; returns how many versions were
    /// removed.
    fn delete_old_versions(
        &self,
        ctx: &mut OpCtx<'_>,
        id: &str,
        keep: usize,
    ) -> Result<usize, ScfsError>;

    /// Deletes every version of `id`.
    fn delete_all(&self, ctx: &mut OpCtx<'_>, id: &str) -> Result<(), ScfsError>;

    /// Propagates an ACL to the objects storing `id` in the cloud(s).
    fn set_acl(&self, ctx: &mut OpCtx<'_>, id: &str, acl: &Acl) -> Result<(), ScfsError>;
}

/// The one primitive each backend supplies: immutable, content-addressed
/// blob storage (chunks and manifests alike are blobs addressed by
/// `id|hash`) plus the shared version registry. Everything else — dirty-chunk
/// selection, dedup, manifest commit, per-chunk GC, ACL fan-out — is the
/// blanket [`FileStorage`] implementation below, written once.
trait ChunkedBackend: Send + Sync {
    /// Short backend label for result tables.
    fn backend_label(&self) -> &'static str;

    /// The registry of versions written through this backend instance.
    fn registry(&self) -> &Mutex<VersionRegistry>;

    /// Stores the blob `data` addressed by `id|hash`.
    fn put_blob(
        &self,
        ctx: &mut OpCtx<'_>,
        id: &str,
        hash: &ContentHash,
        data: &[u8],
    ) -> Result<(), ScfsError>;

    /// Reads back the blob addressed by `id|hash`, verifying its content
    /// against the hash.
    fn get_blob(
        &self,
        ctx: &mut OpCtx<'_>,
        id: &str,
        hash: &ContentHash,
    ) -> Result<Vec<u8>, ScfsError>;

    /// Deletes the blob addressed by `id|hash`; missing blobs are not an
    /// error (GC may race with another client's collector).
    fn delete_blob(
        &self,
        ctx: &mut OpCtx<'_>,
        id: &str,
        hash: &ContentHash,
    ) -> Result<(), ScfsError>;

    /// Propagates an ACL to the blob addressed by `id|hash`.
    fn set_blob_acl(
        &self,
        ctx: &mut OpCtx<'_>,
        id: &str,
        hash: &ContentHash,
        acl: &Acl,
    ) -> Result<(), ScfsError>;
}

impl<B: ChunkedBackend> FileStorage for B {
    fn label(&self) -> &'static str {
        self.backend_label()
    }

    fn write_version(
        &self,
        ctx: &mut OpCtx<'_>,
        id: &str,
        data: &[u8],
        map: &ChunkMap,
        prev: Option<&ChunkMap>,
        _is_new: bool,
        acl: Option<&Acl>,
        opts: &TransferOptions,
    ) -> Result<WriteOutcome, ScfsError> {
        let (stored, tracked) = {
            let registry = self.registry().lock();
            (registry.live_chunks(id), registry.tracks(id))
        };
        // The registry is GC-aware: once it tracks `id`, it alone decides
        // which chunks are still stored. `prev` is only trusted on a fresh
        // instance with no record — otherwise a chunk that is clean relative
        // to `prev` but already reclaimed by the GC would be silently
        // omitted, committing a version that can never be read.
        let prev_chunks: HashSet<&ContentHash> = match prev {
            Some(prev) if !tracked => prev.chunks().iter().collect(),
            _ => HashSet::new(),
        };
        let plan = TransferPlan::upload(map, |h| stored.contains(h) || prev_chunks.contains(h));
        let (sizes, report) = execute_plan(ctx, opts, &plan, |job, fork_ctx| {
            let chunk = &data[map.byte_range(job.index)];
            self.put_blob(fork_ctx, id, &job.hash, chunk)?;
            if let Some(acl) = acl {
                self.set_blob_acl(fork_ctx, id, &job.hash, acl)?;
            }
            Ok(chunk.len() as u64)
        })?;
        let mut bytes_uploaded: u64 = sizes.iter().sum();
        let manifest = map.encode();
        let root = sha256(&manifest);
        self.put_blob(ctx, id, &root, &manifest)?;
        if let Some(acl) = acl {
            self.set_blob_acl(ctx, id, &root, acl)?;
        }
        bytes_uploaded += manifest.len() as u64;
        self.registry().lock().push(id, root, map.clone());
        Ok(WriteOutcome {
            root_hash: root,
            chunks_uploaded: report.chunks,
            bytes_uploaded,
            waves: report.waves,
        })
    }

    fn read_manifest(
        &self,
        ctx: &mut OpCtx<'_>,
        id: &str,
        hash: &ContentHash,
    ) -> Result<ChunkMap, ScfsError> {
        let bytes = self.get_blob(ctx, id, hash)?;
        ChunkMap::decode(&bytes).map_err(|_| {
            StorageError::IntegrityViolation {
                key: id.to_string(),
            }
            .into()
        })
    }

    fn read_chunk(
        &self,
        ctx: &mut OpCtx<'_>,
        id: &str,
        hash: &ContentHash,
    ) -> Result<Vec<u8>, ScfsError> {
        self.get_blob(ctx, id, hash)
    }

    fn delete_old_versions(
        &self,
        ctx: &mut OpCtx<'_>,
        id: &str,
        keep: usize,
    ) -> Result<usize, ScfsError> {
        let pruned = self.registry().lock().prune(id, keep);
        for hash in pruned.manifests.iter().chain(pruned.chunks.iter()) {
            self.delete_blob(ctx, id, hash)?;
        }
        Ok(pruned.removed)
    }

    fn delete_all(&self, ctx: &mut OpCtx<'_>, id: &str) -> Result<(), ScfsError> {
        let pruned = self.registry().lock().remove_all(id);
        for hash in pruned.manifests.iter().chain(pruned.chunks.iter()) {
            self.delete_blob(ctx, id, hash)?;
        }
        Ok(())
    }

    fn set_acl(&self, ctx: &mut OpCtx<'_>, id: &str, acl: &Acl) -> Result<(), ScfsError> {
        let objects = self.registry().lock().live_objects(id);
        for hash in &objects {
            self.set_blob_acl(ctx, id, hash, acl)?;
        }
        Ok(())
    }
}

/// Single-cloud backend: blobs stored as objects under `id|hash` keys in one
/// provider (the paper's AWS backend uses Amazon S3).
pub struct SingleCloudStorage {
    cloud: Arc<dyn ObjectStore>,
    registry: Mutex<VersionRegistry>,
}

impl SingleCloudStorage {
    /// Creates a backend over one cloud.
    pub fn new(cloud: Arc<dyn ObjectStore>) -> Self {
        SingleCloudStorage {
            cloud,
            registry: Mutex::new(VersionRegistry::default()),
        }
    }

    /// The underlying cloud.
    pub fn cloud(&self) -> &Arc<dyn ObjectStore> {
        &self.cloud
    }

    fn blob_key(id: &str, hash: &ContentHash) -> String {
        format!("scfs/{id}/blob/{}", to_hex(hash))
    }
}

impl ChunkedBackend for SingleCloudStorage {
    fn backend_label(&self) -> &'static str {
        "AWS"
    }

    fn registry(&self) -> &Mutex<VersionRegistry> {
        &self.registry
    }

    fn put_blob(
        &self,
        ctx: &mut OpCtx<'_>,
        id: &str,
        hash: &ContentHash,
        data: &[u8],
    ) -> Result<(), ScfsError> {
        Ok(self.cloud.put(ctx, &Self::blob_key(id, hash), data)?)
    }

    fn get_blob(
        &self,
        ctx: &mut OpCtx<'_>,
        id: &str,
        hash: &ContentHash,
    ) -> Result<Vec<u8>, ScfsError> {
        let bytes = self.cloud.get(ctx, &Self::blob_key(id, hash))?;
        // Verify the content against the anchor hash (step r3 of Figure 3).
        if &sha256(&bytes) != hash {
            return Err(StorageError::IntegrityViolation {
                key: id.to_string(),
            }
            .into());
        }
        Ok(bytes)
    }

    fn delete_blob(
        &self,
        ctx: &mut OpCtx<'_>,
        id: &str,
        hash: &ContentHash,
    ) -> Result<(), ScfsError> {
        match self.cloud.delete(ctx, &Self::blob_key(id, hash)) {
            Ok(()) | Err(StorageError::NotFound { .. }) => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    fn set_blob_acl(
        &self,
        ctx: &mut OpCtx<'_>,
        id: &str,
        hash: &ContentHash,
        acl: &Acl,
    ) -> Result<(), ScfsError> {
        match self
            .cloud
            .set_acl(ctx, &Self::blob_key(id, hash), acl.clone())
        {
            // Versions written by other collaborators are owned by them;
            // only their writer can retag those objects, so skip them.
            Ok(())
            | Err(StorageError::NotFound { .. })
            | Err(StorageError::AccessDenied { .. }) => Ok(()),
            Err(e) => Err(e.into()),
        }
    }
}

/// Cloud-of-clouds backend: blobs stored through DepSky-CA as immutable
/// single-version data units addressed by `id|hash`.
pub struct CloudOfCloudsStorage {
    depsky: DepSkyClient,
    registry: Mutex<VersionRegistry>,
}

impl CloudOfCloudsStorage {
    /// Creates a backend over a DepSky client.
    pub fn new(depsky: DepSkyClient) -> Self {
        CloudOfCloudsStorage {
            depsky,
            registry: Mutex::new(VersionRegistry::default()),
        }
    }

    /// The underlying DepSky client.
    pub fn depsky(&self) -> &DepSkyClient {
        &self.depsky
    }
}

impl ChunkedBackend for CloudOfCloudsStorage {
    fn backend_label(&self) -> &'static str {
        "CoC"
    }

    fn registry(&self) -> &Mutex<VersionRegistry> {
        &self.registry
    }

    fn put_blob(
        &self,
        ctx: &mut OpCtx<'_>,
        id: &str,
        hash: &ContentHash,
        data: &[u8],
    ) -> Result<(), ScfsError> {
        Ok(self.depsky.write_blob(ctx, id, hash, data)?)
    }

    fn get_blob(
        &self,
        ctx: &mut OpCtx<'_>,
        id: &str,
        hash: &ContentHash,
    ) -> Result<Vec<u8>, ScfsError> {
        Ok(self.depsky.read_blob(ctx, id, hash)?)
    }

    fn delete_blob(
        &self,
        ctx: &mut OpCtx<'_>,
        id: &str,
        hash: &ContentHash,
    ) -> Result<(), ScfsError> {
        Ok(self.depsky.delete_blob(ctx, id, hash)?)
    }

    fn set_blob_acl(
        &self,
        ctx: &mut OpCtx<'_>,
        id: &str,
        hash: &ContentHash,
        acl: &Acl,
    ) -> Result<(), ScfsError> {
        Ok(self.depsky.set_blob_acl(ctx, id, hash, acl)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transfer::TransferOptions;
    use cloud_store::providers::ProviderSet;
    use cloud_store::sim_cloud::SimulatedCloud;
    use depsky::config::DepSkyConfig;
    use sim_core::time::Clock;

    const CHUNK: usize = 1024;

    fn single() -> SingleCloudStorage {
        SingleCloudStorage::new(Arc::new(SimulatedCloud::test("s3")))
    }

    fn coc() -> CloudOfCloudsStorage {
        let clouds: Vec<Arc<dyn ObjectStore>> = ProviderSet::test_backend(4)
            .into_iter()
            .enumerate()
            .map(|(i, p)| Arc::new(SimulatedCloud::new(p, i as u64)) as Arc<dyn ObjectStore>)
            .collect();
        CloudOfCloudsStorage::new(
            DepSkyClient::new(clouds, DepSkyConfig::scfs_default(), 1).unwrap(),
        )
    }

    fn write(
        storage: &dyn FileStorage,
        ctx: &mut OpCtx<'_>,
        id: &str,
        data: &[u8],
        prev: Option<&ChunkMap>,
        is_new: bool,
    ) -> (WriteOutcome, ChunkMap) {
        let map = ChunkMap::build(data, CHUNK);
        let outcome = storage
            .write_version(
                ctx,
                id,
                data,
                &map,
                prev,
                is_new,
                None,
                &TransferOptions::default(),
            )
            .unwrap();
        (outcome, map)
    }

    fn run_round_trip(storage: &dyn FileStorage) {
        let mut clock = Clock::new();
        let mut ctx = OpCtx::new(&mut clock, "alice".into());
        let v1 = vec![1u8; 3000];
        let mut v2 = v1.clone();
        v2.extend_from_slice(b"appended tail");
        let (o1, m1) = write(storage, &mut ctx, "file-1", &v1, None, true);
        let (o2, _) = write(storage, &mut ctx, "file-1", &v2, Some(&m1), false);
        assert_ne!(o1.root_hash, o2.root_hash);
        assert_eq!(
            storage
                .read_version(
                    &mut ctx,
                    "file-1",
                    &o1.root_hash,
                    &TransferOptions::default()
                )
                .unwrap(),
            v1
        );
        assert_eq!(
            storage
                .read_version(
                    &mut ctx,
                    "file-1",
                    &o2.root_hash,
                    &TransferOptions::default()
                )
                .unwrap(),
            v2
        );
    }

    #[test]
    fn single_cloud_round_trip() {
        run_round_trip(&single());
    }

    #[test]
    fn cloud_of_clouds_round_trip() {
        run_round_trip(&coc());
    }

    fn run_append_uploads_only_dirty_chunks(storage: &dyn FileStorage) {
        let mut clock = Clock::new();
        let mut ctx = OpCtx::new(&mut clock, "alice".into());
        // 8 chunks of random-ish distinct content.
        let mut v1 = Vec::new();
        for i in 0..8u8 {
            v1.extend(std::iter::repeat_n(i, CHUNK));
        }
        let (o1, m1) = write(storage, &mut ctx, "f", &v1, None, true);
        assert_eq!(o1.chunks_uploaded, 8);
        // Append less than one chunk: exactly one new chunk moves.
        let mut v2 = v1.clone();
        v2.extend_from_slice(&[0xAA; 100]);
        let (o2, m2) = write(storage, &mut ctx, "f", &v2, Some(&m1), false);
        assert_eq!(o2.chunks_uploaded, 1);
        assert!(o2.bytes_uploaded < 2 * CHUNK as u64);
        // Rewriting identical content uploads no chunks at all.
        let (o3, _) = write(storage, &mut ctx, "f", &v2, Some(&m2), false);
        assert_eq!(o3.chunks_uploaded, 0);
        assert_eq!(o3.root_hash, o2.root_hash);
    }

    #[test]
    fn single_cloud_append_uploads_only_dirty_chunks() {
        run_append_uploads_only_dirty_chunks(&single());
    }

    #[test]
    fn stale_prev_map_does_not_skip_gc_reclaimed_chunks() {
        // A writer whose prev map predates a GC cycle must not trust it:
        // chunks that are clean relative to prev may already be reclaimed,
        // and skipping them would commit an unreadable version.
        let storage = single();
        let mut clock = Clock::new();
        let mut ctx = OpCtx::new(&mut clock, "alice".into());
        let mut data = vec![0u8; 2 * CHUNK];
        data[..CHUNK].fill(0xA1); // chunk 0, unique to v1's lineage start
        let (_, m1) = write(&storage, &mut ctx, "f", &data, None, true);
        // Newer versions replace chunk 0, so the GC reclaims it.
        let mut prev = m1.clone();
        for i in 1..4u8 {
            data[..CHUNK].fill(i);
            let (_, m) = write(&storage, &mut ctx, "f", &data, Some(&prev), false);
            prev = m;
        }
        assert!(storage.delete_old_versions(&mut ctx, "f", 1).unwrap() > 0);
        // Rewrite the v1 content with the stale m1 as prev: every chunk of
        // the new version must be readable, even those m1 claims exist.
        data[..CHUNK].fill(0xA1);
        let (o, _) = write(&storage, &mut ctx, "f", &data, Some(&m1), false);
        assert_eq!(
            storage
                .read_version(&mut ctx, "f", &o.root_hash, &TransferOptions::default())
                .unwrap(),
            data
        );
    }

    #[test]
    fn cloud_of_clouds_append_uploads_only_dirty_chunks() {
        run_append_uploads_only_dirty_chunks(&coc());
    }

    #[test]
    fn identical_chunks_are_deduplicated_within_a_version() {
        let storage = single();
        let mut clock = Clock::new();
        let mut ctx = OpCtx::new(&mut clock, "alice".into());
        // Four identical chunks: one upload.
        let data = vec![5u8; 4 * CHUNK];
        let (o, _) = write(&storage, &mut ctx, "f", &data, None, true);
        assert_eq!(o.chunks_uploaded, 1);
    }

    #[test]
    fn empty_files_round_trip() {
        for storage in [&single() as &dyn FileStorage, &coc() as &dyn FileStorage] {
            let mut clock = Clock::new();
            let mut ctx = OpCtx::new(&mut clock, "alice".into());
            let (o, _) = write(storage, &mut ctx, "f", &[], None, true);
            assert_eq!(o.chunks_uploaded, 0);
            assert_eq!(
                storage
                    .read_version(&mut ctx, "f", &o.root_hash, &TransferOptions::default())
                    .unwrap(),
                Vec::<u8>::new()
            );
        }
    }

    #[test]
    fn labels_identify_backends() {
        assert_eq!(single().label(), "AWS");
        assert_eq!(coc().label(), "CoC");
    }

    fn run_gc_reclaims_per_chunk(storage: &dyn FileStorage) {
        let mut clock = Clock::new();
        let mut ctx = OpCtx::new(&mut clock, "alice".into());
        let mut maps: Vec<ChunkMap> = Vec::new();
        let mut outcomes = Vec::new();
        let mut data = vec![0u8; 2 * CHUNK];
        for i in 0..5u8 {
            // Each version rewrites the last chunk only; chunk 0 is shared by
            // all versions.
            data[2 * CHUNK - 1] = i;
            let prev = maps.last().cloned();
            let (o, m) = write(storage, &mut ctx, "f", &data, prev.as_ref(), i == 0);
            maps.push(m);
            outcomes.push(o);
        }
        let removed = storage.delete_old_versions(&mut ctx, "f", 2).unwrap();
        assert_eq!(removed, 3);
        // Newest versions survive — including the shared first chunk.
        assert!(storage
            .read_version(
                &mut ctx,
                "f",
                &outcomes[4].root_hash,
                &TransferOptions::default()
            )
            .is_ok());
        assert!(storage
            .read_version(
                &mut ctx,
                "f",
                &outcomes[3].root_hash,
                &TransferOptions::default()
            )
            .is_ok());
        // Oldest versions are gone.
        assert!(storage
            .read_version(
                &mut ctx,
                "f",
                &outcomes[0].root_hash,
                &TransferOptions::default()
            )
            .is_err());
        assert_eq!(storage.delete_old_versions(&mut ctx, "f", 2).unwrap(), 0);
    }

    #[test]
    fn single_cloud_gc_reclaims_per_chunk() {
        run_gc_reclaims_per_chunk(&single());
    }

    #[test]
    fn cloud_of_clouds_gc_reclaims_per_chunk() {
        run_gc_reclaims_per_chunk(&coc());
    }

    #[test]
    fn single_cloud_delete_all() {
        let storage = single();
        let mut clock = Clock::new();
        let mut ctx = OpCtx::new(&mut clock, "alice".into());
        let (o, _) = write(&storage, &mut ctx, "f", b"data", None, true);
        storage.delete_all(&mut ctx, "f").unwrap();
        assert!(storage
            .read_version(&mut ctx, "f", &o.root_hash, &TransferOptions::default())
            .is_err());
    }

    #[test]
    fn missing_version_is_transient_not_found() {
        let storage = single();
        let mut clock = Clock::new();
        let mut ctx = OpCtx::new(&mut clock, "alice".into());
        let missing = sha256(b"never written");
        match storage.read_manifest(&mut ctx, "f", &missing) {
            Err(ScfsError::Storage(e)) => assert!(e.is_transient()),
            other => panic!("expected transient storage error, got {other:?}"),
        }
    }
}
