//! Storage backends: single cloud (AWS) and cloud-of-clouds (CoC).
//!
//! SCFS provides a pluggable backplane (paper §3.2, Figure 5): file data can
//! go to a single storage cloud (Amazon S3 in the paper's AWS backend) or to
//! a DepSky cloud-of-clouds. Both are hidden behind [`FileStorage`], whose
//! operations are exactly what the storage service of the agent needs:
//! write a new immutable version, read the version with a given hash
//! (the storage-service half of the consistency-anchor algorithm), delete old
//! versions, and propagate ACL changes.

use std::sync::Arc;

use cloud_store::error::StorageError;
use cloud_store::store::{ObjectStore, OpCtx};
use cloud_store::types::Acl;
use depsky::register::DepSkyClient;
use parking_lot::Mutex;
use scfs_crypto::{sha256, to_hex, ContentHash};

use crate::error::ScfsError;

/// Whole-file versioned storage, the "SS" of the consistency-anchor algorithm.
pub trait FileStorage: Send + Sync {
    /// Short backend label for result tables (`"AWS"` or `"CoC"`).
    fn label(&self) -> &'static str;

    /// Stores a new version of the object identified by `id` and returns the
    /// content hash under which it can later be read. `is_new` is a hint that
    /// the object was never written before (lets the CoC backend skip its
    /// metadata-read phase on file creation).
    fn write_version(
        &self,
        ctx: &mut OpCtx<'_>,
        id: &str,
        data: &[u8],
        is_new: bool,
    ) -> Result<ContentHash, ScfsError>;

    /// Reads the version of `id` whose content hash is `hash`. Returns
    /// [`StorageError::NotFound`] (wrapped) while the version is not yet
    /// visible — the caller runs the consistency-anchor retry loop.
    fn read_version(
        &self,
        ctx: &mut OpCtx<'_>,
        id: &str,
        hash: &ContentHash,
    ) -> Result<Vec<u8>, ScfsError>;

    /// Deletes all but the newest `keep` versions of `id`; returns how many
    /// versions were removed.
    fn delete_old_versions(
        &self,
        ctx: &mut OpCtx<'_>,
        id: &str,
        keep: usize,
    ) -> Result<usize, ScfsError>;

    /// Deletes every version of `id`.
    fn delete_all(&self, ctx: &mut OpCtx<'_>, id: &str) -> Result<(), ScfsError>;

    /// Propagates an ACL to the objects storing `id` in the cloud(s).
    fn set_acl(&self, ctx: &mut OpCtx<'_>, id: &str, acl: &Acl) -> Result<(), ScfsError>;
}

/// Single-cloud backend: whole files stored as objects under `id|hash` keys
/// in one provider (the paper's AWS backend uses Amazon S3).
pub struct SingleCloudStorage {
    cloud: Arc<dyn ObjectStore>,
    /// Versions written per object id, newest last (used by the GC to know
    /// which keys to delete without listing the cloud).
    versions: Mutex<std::collections::HashMap<String, Vec<ContentHash>>>,
}

impl SingleCloudStorage {
    /// Creates a backend over one cloud.
    pub fn new(cloud: Arc<dyn ObjectStore>) -> Self {
        SingleCloudStorage {
            cloud,
            versions: Mutex::new(std::collections::HashMap::new()),
        }
    }

    /// The underlying cloud.
    pub fn cloud(&self) -> &Arc<dyn ObjectStore> {
        &self.cloud
    }

    fn object_key(id: &str, hash: &ContentHash) -> String {
        format!("scfs/{id}/{}", to_hex(hash))
    }
}

impl FileStorage for SingleCloudStorage {
    fn label(&self) -> &'static str {
        "AWS"
    }

    fn write_version(
        &self,
        ctx: &mut OpCtx<'_>,
        id: &str,
        data: &[u8],
        _is_new: bool,
    ) -> Result<ContentHash, ScfsError> {
        let hash = sha256(data);
        self.cloud.put(ctx, &Self::object_key(id, &hash), data)?;
        self.versions
            .lock()
            .entry(id.to_string())
            .or_default()
            .push(hash);
        Ok(hash)
    }

    fn read_version(
        &self,
        ctx: &mut OpCtx<'_>,
        id: &str,
        hash: &ContentHash,
    ) -> Result<Vec<u8>, ScfsError> {
        let data = self.cloud.get(ctx, &Self::object_key(id, hash))?;
        // Verify the content against the anchor hash (step r3 of Figure 3).
        if &sha256(&data) != hash {
            return Err(StorageError::IntegrityViolation { key: id.to_string() }.into());
        }
        Ok(data)
    }

    fn delete_old_versions(
        &self,
        ctx: &mut OpCtx<'_>,
        id: &str,
        keep: usize,
    ) -> Result<usize, ScfsError> {
        let old: Vec<ContentHash> = {
            let mut versions = self.versions.lock();
            let list = versions.entry(id.to_string()).or_default();
            if list.len() <= keep {
                return Ok(0);
            }
            let cut = list.len() - keep;
            list.drain(..cut).collect()
        };
        let mut removed = 0;
        for hash in &old {
            match self.cloud.delete(ctx, &Self::object_key(id, hash)) {
                Ok(()) | Err(StorageError::NotFound { .. }) => removed += 1,
                Err(e) => return Err(e.into()),
            }
        }
        Ok(removed)
    }

    fn delete_all(&self, ctx: &mut OpCtx<'_>, id: &str) -> Result<(), ScfsError> {
        let all: Vec<ContentHash> = self.versions.lock().remove(id).unwrap_or_default();
        for hash in &all {
            match self.cloud.delete(ctx, &Self::object_key(id, hash)) {
                Ok(()) | Err(StorageError::NotFound { .. }) => {}
                Err(e) => return Err(e.into()),
            }
        }
        Ok(())
    }

    fn set_acl(&self, ctx: &mut OpCtx<'_>, id: &str, acl: &Acl) -> Result<(), ScfsError> {
        let hashes: Vec<ContentHash> = self
            .versions
            .lock()
            .get(id)
            .cloned()
            .unwrap_or_default();
        for hash in &hashes {
            match self
                .cloud
                .set_acl(ctx, &Self::object_key(id, hash), acl.clone())
            {
                // Versions written by other collaborators are owned by them;
                // only their writer can retag those objects, so skip them.
                Ok(()) | Err(StorageError::NotFound { .. }) | Err(StorageError::AccessDenied { .. }) => {}
                Err(e) => return Err(e.into()),
            }
        }
        Ok(())
    }
}

/// Cloud-of-clouds backend: whole files stored through DepSky-CA.
pub struct CloudOfCloudsStorage {
    depsky: DepSkyClient,
}

impl CloudOfCloudsStorage {
    /// Creates a backend over a DepSky client.
    pub fn new(depsky: DepSkyClient) -> Self {
        CloudOfCloudsStorage { depsky }
    }

    /// The underlying DepSky client.
    pub fn depsky(&self) -> &DepSkyClient {
        &self.depsky
    }
}

impl FileStorage for CloudOfCloudsStorage {
    fn label(&self) -> &'static str {
        "CoC"
    }

    fn write_version(
        &self,
        ctx: &mut OpCtx<'_>,
        id: &str,
        data: &[u8],
        is_new: bool,
    ) -> Result<ContentHash, ScfsError> {
        let receipt = if is_new {
            self.depsky.write_new(ctx, id, data)?
        } else {
            self.depsky.write(ctx, id, data)?
        };
        Ok(receipt.hash)
    }

    fn read_version(
        &self,
        ctx: &mut OpCtx<'_>,
        id: &str,
        hash: &ContentHash,
    ) -> Result<Vec<u8>, ScfsError> {
        Ok(self.depsky.read_by_hash(ctx, id, hash)?)
    }

    fn delete_old_versions(
        &self,
        ctx: &mut OpCtx<'_>,
        id: &str,
        keep: usize,
    ) -> Result<usize, ScfsError> {
        Ok(self.depsky.delete_old_versions(ctx, id, keep)?)
    }

    fn delete_all(&self, ctx: &mut OpCtx<'_>, id: &str) -> Result<(), ScfsError> {
        Ok(self.depsky.delete_all(ctx, id)?)
    }

    fn set_acl(&self, ctx: &mut OpCtx<'_>, id: &str, acl: &Acl) -> Result<(), ScfsError> {
        Ok(self.depsky.set_acl(ctx, id, acl)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloud_store::providers::ProviderSet;
    use cloud_store::sim_cloud::SimulatedCloud;
    use depsky::config::DepSkyConfig;
    use sim_core::time::Clock;

    fn single() -> SingleCloudStorage {
        SingleCloudStorage::new(Arc::new(SimulatedCloud::test("s3")))
    }

    fn coc() -> CloudOfCloudsStorage {
        let clouds: Vec<Arc<dyn ObjectStore>> = ProviderSet::test_backend(4)
            .into_iter()
            .enumerate()
            .map(|(i, p)| Arc::new(SimulatedCloud::new(p, i as u64)) as Arc<dyn ObjectStore>)
            .collect();
        CloudOfCloudsStorage::new(DepSkyClient::new(clouds, DepSkyConfig::scfs_default(), 1).unwrap())
    }

    fn run_round_trip(storage: &dyn FileStorage) {
        let mut clock = Clock::new();
        let mut ctx = OpCtx::new(&mut clock, "alice".into());
        let v1 = b"first version".to_vec();
        let v2 = b"second, different version".to_vec();
        let h1 = storage.write_version(&mut ctx, "file-1", &v1, true).unwrap();
        let h2 = storage.write_version(&mut ctx, "file-1", &v2, false).unwrap();
        assert_ne!(h1, h2);
        assert_eq!(storage.read_version(&mut ctx, "file-1", &h1).unwrap(), v1);
        assert_eq!(storage.read_version(&mut ctx, "file-1", &h2).unwrap(), v2);
    }

    #[test]
    fn single_cloud_round_trip() {
        run_round_trip(&single());
    }

    #[test]
    fn cloud_of_clouds_round_trip() {
        run_round_trip(&coc());
    }

    #[test]
    fn labels_identify_backends() {
        assert_eq!(single().label(), "AWS");
        assert_eq!(coc().label(), "CoC");
    }

    #[test]
    fn single_cloud_gc_removes_old_versions() {
        let storage = single();
        let mut clock = Clock::new();
        let mut ctx = OpCtx::new(&mut clock, "alice".into());
        let mut hashes = Vec::new();
        for i in 0..5u8 {
            hashes.push(storage.write_version(&mut ctx, "f", &[i; 64], i == 0).unwrap());
        }
        let removed = storage.delete_old_versions(&mut ctx, "f", 2).unwrap();
        assert_eq!(removed, 3);
        // Newest versions survive, oldest are gone.
        assert!(storage.read_version(&mut ctx, "f", &hashes[4]).is_ok());
        assert!(storage.read_version(&mut ctx, "f", &hashes[0]).is_err());
        assert_eq!(storage.delete_old_versions(&mut ctx, "f", 2).unwrap(), 0);
    }

    #[test]
    fn single_cloud_delete_all() {
        let storage = single();
        let mut clock = Clock::new();
        let mut ctx = OpCtx::new(&mut clock, "alice".into());
        let h = storage.write_version(&mut ctx, "f", b"data", true).unwrap();
        storage.delete_all(&mut ctx, "f").unwrap();
        assert!(storage.read_version(&mut ctx, "f", &h).is_err());
    }

    #[test]
    fn missing_version_is_transient_not_found() {
        let storage = single();
        let mut clock = Clock::new();
        let mut ctx = OpCtx::new(&mut clock, "alice".into());
        let missing = sha256(b"never written");
        match storage.read_version(&mut ctx, "f", &missing) {
            Err(ScfsError::Storage(e)) => assert!(e.is_transient()),
            other => panic!("expected transient storage error, got {other:?}"),
        }
    }
}
