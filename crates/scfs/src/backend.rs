//! Storage backends: single cloud (AWS) and cloud-of-clouds (CoC).
//!
//! SCFS provides a pluggable backplane (paper §3.2, Figure 5): file data can
//! go to a single storage cloud (Amazon S3 in the paper's AWS backend) or to
//! a DepSky cloud-of-clouds. Both are hidden behind [`FileStorage`], whose
//! operations are what the storage service of the agent needs on the chunked
//! data path:
//!
//! * write a new immutable version — upload the chunks of the file that are
//!   not already in the **global chunk store** (chunks are content-addressed
//!   across versions, files and users; see [`crate::chunkstore`]) plus a
//!   small [`ChunkMap`] manifest stored per object under its root hash (the
//!   storage-service half of the consistency-anchor algorithm). Everything
//!   here is boundary-agnostic: dirty-chunk selection, dedup and refcounts
//!   compare content hashes, so fixed-size and content-defined
//!   ([`ChunkMap::build_cdc`]) maps move through unchanged;
//! * read the manifest with a given root hash, and individual chunks by
//!   content hash (only the chunks a reader is missing);
//! * release old versions — each version drops one reference per distinct
//!   chunk, and a chunk is physically reclaimed only once its global
//!   reference count is zero, through the two-phase release journal
//!   ([`FileStorage::replay_release_journal`]), so a failed delete is
//!   retried instead of leaking an orphan;
//! * propagate ACL changes to the manifests of a file (chunks are owned by
//!   the shared chunk-store principal and are capability-protected by the
//!   manifest ACLs, so `setfacl` is O(versions), not O(versions × chunks)).

use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;

use cloud_store::error::StorageError;
use cloud_store::store::{ObjectStore, OpCtx};
use cloud_store::types::{AccountId, Acl};
use depsky::register::DepSkyClient;
use parking_lot::Mutex;
use scfs_crypto::{sha256, to_hex, ContentHash};
use sim_core::background::{BackgroundScheduler, Pending};
use sim_core::schedule::{ChoiceKind, ControllerSlot};
use sim_core::time::SimInstant;

use crate::chunkstore::{
    chunk_store_account, BlobAudit, ChunkStore, JournalOpts, ReleaseTarget, ReplayReport,
};
use crate::durability::DurabilityLevel;
use crate::error::ScfsError;
use crate::invariant::InvariantViolation;
use crate::transfer::{execute_plan, TransferOptions, TransferPlan};
use crate::types::ChunkMap;

/// Transfer accounting returned by a successful [`FileStorage::write_version`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteOutcome {
    /// Root hash of the written version (hash of the encoded [`ChunkMap`]);
    /// this is the `hash` the consistency anchor stores.
    pub root_hash: ContentHash,
    /// Chunks actually uploaded (dirty chunks not already stored globally).
    pub chunks_uploaded: u64,
    /// Payload bytes handed to the backend: the dirty chunks plus the
    /// manifest. This counts logical (plaintext) bytes — the CoC backend
    /// additionally pays its replication/erasure-coding overhead (~1.5× with
    /// the DepSky-CA preferred quorum) on the wire, which is accounted in
    /// the per-cloud [`cloud_store::CloudMetrics`], not here.
    pub bytes_uploaded: u64,
    /// Parallel waves the chunk uploads took (0 when no chunk moved); the
    /// caller's clock advanced by roughly this many chunk-upload latencies.
    pub waves: u64,
    /// Distinct chunks this version skipped because *another file* (or
    /// another user) had already stored identical content in the global
    /// chunk store — the cross-file dedup wins, as opposed to chunks reused
    /// from this object's own previous versions.
    pub dedup_cross_file: u64,
}

/// One stored version of an object: its root hash and chunk map. Backends
/// keep these per object id so the garbage collector can release per-version
/// chunk references without listing the cloud.
#[derive(Debug, Clone)]
struct StoredVersion {
    root: ContentHash,
    map: ChunkMap,
}

/// Registry of the versions written through one backend instance: object id
/// → versions, newest last. Since the refcounted chunk store took over chunk
/// liveness, the registry only tracks manifests (which version commits exist
/// and what each one references) — whether a *chunk* is still needed is the
/// chunk store's refcount, never a scan over this map.
#[derive(Debug, Default)]
struct VersionRegistry {
    /// Ordered by object id so audits ([`VersionRegistry::all_manifests`])
    /// enumerate in a run-independent order.
    versions: BTreeMap<String, Vec<StoredVersion>>,
}

impl VersionRegistry {
    /// Records a newly written version.
    fn push(&mut self, id: &str, root: ContentHash, map: ChunkMap) {
        self.versions
            .entry(id.to_string())
            .or_default()
            .push(StoredVersion { root, map });
    }

    /// Whether this registry has any record of `id`.
    fn tracks(&self, id: &str) -> bool {
        self.versions.contains_key(id)
    }

    /// The chunk map of the retained version of `id` stored under `root`,
    /// if this instance still tracks it.
    fn map_of(&self, id: &str, root: &ContentHash) -> Option<ChunkMap> {
        self.versions
            .get(id)?
            .iter()
            .rev()
            .find(|v| v.root == *root)
            .map(|v| v.map.clone())
    }

    /// Every chunk hash referenced by a retained version of `id` — the
    /// "this file's own history" set used to tell cross-file dedup hits
    /// apart from ordinary cross-version reuse.
    fn live_chunks(&self, id: &str) -> HashSet<ContentHash> {
        self.versions
            .get(id)
            .map(|vs| {
                vs.iter()
                    .flat_map(|v| v.map.chunks().iter().copied())
                    .collect()
            })
            .unwrap_or_default()
    }

    /// The distinct manifest roots of the retained versions of `id` — the
    /// ACL-propagation targets.
    fn live_manifests(&self, id: &str) -> Vec<ContentHash> {
        let mut seen = HashSet::new();
        self.versions
            .get(id)
            .map(Vec::as_slice)
            .unwrap_or(&[])
            .iter()
            .filter(|v| seen.insert(v.root))
            .map(|v| v.root)
            .collect()
    }

    /// Every `(id, root)` manifest pair of every retained version.
    fn all_manifests(&self) -> Vec<(String, ContentHash)> {
        let mut out = Vec::new();
        for (id, versions) in &self.versions {
            let mut seen = HashSet::new();
            for version in versions {
                if seen.insert(version.root) {
                    out.push((id.clone(), version.root));
                }
            }
        }
        out
    }

    /// Drops all but the newest `keep` versions of `id`. Each dropped
    /// version's distinct chunk set comes back as one release unit (the
    /// exact references `write_version` took), plus the manifests no kept
    /// version stores its root under — versions can share manifests (two
    /// identical versions have the same root hash), so a root still used by
    /// a kept version must survive.
    fn prune(&mut self, id: &str, keep: usize) -> PruneResult {
        let list = match self.versions.get_mut(id) {
            Some(list) if list.len() > keep => list,
            _ => return PruneResult::default(),
        };
        let cut = list.len() - keep;
        let dropped: Vec<StoredVersion> = list.drain(..cut).collect();
        let kept_roots: HashSet<ContentHash> = list.iter().map(|v| v.root).collect();
        Self::released(dropped, &kept_roots)
    }

    /// Removes every version of `id`, returning its release units.
    fn remove_all(&mut self, id: &str) -> PruneResult {
        let all = self.versions.remove(id).unwrap_or_default();
        Self::released(all, &HashSet::new())
    }

    fn released(dropped: Vec<StoredVersion>, kept_roots: &HashSet<ContentHash>) -> PruneResult {
        let mut result = PruneResult {
            removed: dropped.len(),
            ..PruneResult::default()
        };
        let mut seen_roots = HashSet::new();
        for version in &dropped {
            if !kept_roots.contains(&version.root) && seen_roots.insert(version.root) {
                result.manifests.push(version.root);
            }
            // Distinct chunks in file order — journal appends derive from
            // this, and hash-map iteration order would make GC behavior
            // (which blob a bounded replay batch reaches, which delete a
            // fault hits) vary run to run, breaking determinism.
            let mut seen = HashSet::new();
            result.version_chunks.push(
                version
                    .map
                    .chunks()
                    .iter()
                    .filter(|h| seen.insert(**h))
                    .copied()
                    .collect(),
            );
        }
        result
    }
}

/// Objects released by a registry prune.
#[derive(Debug, Default)]
struct PruneResult {
    /// Number of versions dropped.
    removed: usize,
    /// Manifest root hashes no retained version uses any more.
    manifests: Vec<ContentHash>,
    /// One distinct-chunk list per dropped version, in file order — the
    /// references to drop from the global chunk store (ordered so journal
    /// appends, and therefore replay, are deterministic).
    version_chunks: Vec<Vec<ContentHash>>,
}

/// The shared mutable state of one backend instance: the per-object version
/// registry and the global refcounted chunk store with its release journal.
#[derive(Debug, Default)]
struct StoreState {
    registry: VersionRegistry,
    chunks: ChunkStore,
    /// Schedule-controller seam: empty in production (journal replay walks
    /// entries oldest-first); the model checker installs one to explore
    /// other replay interleavings.
    controller: ControllerSlot,
}

impl StoreState {
    fn blob_audit(&self) -> BlobAudit {
        let mut manifests = self.registry.all_manifests();
        manifests.extend(self.chunks.pending_manifests());
        BlobAudit::new(self.chunks.reachable_chunks(), manifests)
    }
}

/// Chunked, content-addressed versioned storage — the "SS" of the
/// consistency-anchor algorithm.
pub trait FileStorage: Send + Sync {
    /// Short backend label for result tables (`"AWS"` or `"CoC"`).
    fn label(&self) -> &'static str;

    /// Stores a new version of the object identified by `id`: uploads the
    /// chunks of `data` (laid out by `map`) that are not already in the
    /// global chunk store, takes one chunk-store reference per distinct
    /// chunk, then commits the encoded manifest under its root hash.
    /// Identical content already stored by *any* file or user is skipped
    /// (cross-file dedup); when the instance has no record of `id` (a fresh
    /// mount), chunks present in `prev` are trusted as stored. Newly written
    /// manifests are tagged with `acl` when given, so collaborators can read
    /// the new version (chunks need no tagging — they are owned by the
    /// chunk-store principal). `is_new` hints that the object was never
    /// written before. The dirty chunks move through the transfer engine, at
    /// most `opts.max_parallel` at a time.
    #[allow(clippy::too_many_arguments)]
    fn write_version(
        &self,
        ctx: &mut OpCtx<'_>,
        id: &str,
        data: &[u8],
        map: &ChunkMap,
        prev: Option<&ChunkMap>,
        is_new: bool,
        acl: Option<&Acl>,
        opts: &TransferOptions,
    ) -> Result<WriteOutcome, ScfsError>;

    /// Reads the chunk map of the version of `id` whose root hash is `hash`.
    /// Returns a transient not-found error while the version is not yet
    /// visible — the caller runs the consistency-anchor retry loop.
    fn read_manifest(
        &self,
        ctx: &mut OpCtx<'_>,
        id: &str,
        hash: &ContentHash,
    ) -> Result<ChunkMap, ScfsError>;

    /// Reads one chunk of `id` by content hash, verifying it.
    fn read_chunk(
        &self,
        ctx: &mut OpCtx<'_>,
        id: &str,
        hash: &ContentHash,
    ) -> Result<Vec<u8>, ScfsError>;

    /// Async twin of [`FileStorage::write_version`]: schedules the version
    /// commit as a background job on the object's lane of `sched` (commits
    /// of the same object serialize; different objects overlap) and returns
    /// its completion token. The job runs on a scheduler-owned forked clock,
    /// so the caller's clock is not charged — the blocking form is
    /// `begin_write_version(...).wait(ctx.clock)`.
    #[allow(clippy::too_many_arguments)]
    fn begin_write_version(
        &self,
        sched: &mut BackgroundScheduler,
        now: SimInstant,
        account: AccountId,
        id: &str,
        data: &[u8],
        map: &ChunkMap,
        prev: Option<&ChunkMap>,
        is_new: bool,
        acl: Option<&Acl>,
        opts: &TransferOptions,
    ) -> Pending<Result<WriteOutcome, ScfsError>> {
        sched.spawn(now, Some(id), |bg_clock| {
            let mut ctx = OpCtx::new(bg_clock, account);
            self.write_version(&mut ctx, id, data, map, prev, is_new, acl, opts)
        })
    }

    /// Async twin of the chunk-fetch path: schedules the transfer of the
    /// chunks of `map` at `indices` on the object's lane of `sched` and
    /// returns a token for their bytes, in `indices` order (duplicate
    /// content moves once and fills every requesting position).
    #[allow(clippy::too_many_arguments)]
    fn begin_read_chunks(
        &self,
        sched: &mut BackgroundScheduler,
        now: SimInstant,
        account: AccountId,
        id: &str,
        map: &ChunkMap,
        indices: Vec<usize>,
        opts: &TransferOptions,
    ) -> Pending<Result<Vec<Vec<u8>>, ScfsError>> {
        let plan = TransferPlan::fetch(map, indices.iter().copied(), |_| false);
        sched.spawn(now, Some(id), |bg_clock| {
            let mut ctx = OpCtx::new(bg_clock, account);
            let (chunks, _) = execute_plan(&mut ctx, opts, &plan, |job, fork_ctx| {
                self.read_chunk(fork_ctx, id, &job.hash)
            })?;
            let by_hash: BTreeMap<&ContentHash, &Vec<u8>> = plan
                .jobs()
                .iter()
                .map(|job| &job.hash)
                .zip(chunks.iter())
                .collect();
            indices
                .iter()
                .map(|&index| {
                    let hash = &map.chunks()[index];
                    let chunk = by_hash.get(hash).ok_or(StorageError::NotFound {
                        key: id.to_string(),
                    })?;
                    if chunk.len() != map.chunk_len(index) {
                        return Err(StorageError::IntegrityViolation {
                            key: id.to_string(),
                        }
                        .into());
                    }
                    Ok((*chunk).clone())
                })
                .collect()
        })
    }

    /// Reads and reassembles the whole version of `id` whose root hash is
    /// `hash` (manifest plus every chunk), fetching the chunks through the
    /// transfer engine at most `opts.max_parallel` at a time. This is the
    /// blocking path re-expressed over the async twin: a begin on a
    /// throwaway scheduler followed by an immediate wait.
    fn read_version(
        &self,
        ctx: &mut OpCtx<'_>,
        id: &str,
        hash: &ContentHash,
        opts: &TransferOptions,
    ) -> Result<Vec<u8>, ScfsError> {
        let map = self.read_manifest(ctx, id, hash)?;
        let mut sched = BackgroundScheduler::new();
        let chunks = self
            .begin_read_chunks(
                &mut sched,
                ctx.clock.now(),
                ctx.account.clone(),
                id,
                &map,
                (0..map.chunk_count()).collect(),
                opts,
            )
            .wait(ctx.clock)?;
        let mut data = vec![0u8; map.file_len() as usize];
        for (index, chunk) in chunks.iter().enumerate() {
            data[map.byte_range(index)].copy_from_slice(chunk);
        }
        Ok(data)
    }

    /// Commits a new version of `dst_id` that references the chunks of the
    /// version of `src_id` stored under `root` — a manifest-only copy: zero
    /// chunks move, the destination takes one chunk-store reference per
    /// distinct chunk, and only the (re-tagged) manifest is uploaded.
    /// Returns `Ok(None)` when the backend cannot commit such a copy (no
    /// registry record and no globally stored chunks to reference); callers
    /// fall back to a materializing copy.
    fn copy_version(
        &self,
        ctx: &mut OpCtx<'_>,
        src_id: &str,
        dst_id: &str,
        root: &ContentHash,
        acl: Option<&Acl>,
    ) -> Result<Option<WriteOutcome>, ScfsError> {
        let _ = (ctx, src_id, dst_id, root, acl);
        Ok(None)
    }

    /// The durability level (Table 1) data reaches once a version commit on
    /// this backend completes: level 2 for a single cloud, level 3 for a
    /// cloud-of-clouds.
    fn cloud_durability(&self) -> DurabilityLevel {
        DurabilityLevel::SingleCloud
    }

    /// Releases all but the newest `keep` versions of `id`: each dropped
    /// version's chunk references are dropped and release intents are
    /// journaled (phase one). Physical deletion happens in
    /// [`FileStorage::replay_release_journal`] (phase two), so this call
    /// never aborts half-way and never loses track of a blob. Returns how
    /// many versions were removed.
    fn delete_old_versions(
        &self,
        ctx: &mut OpCtx<'_>,
        id: &str,
        keep: usize,
    ) -> Result<usize, ScfsError>;

    /// Releases every version of `id` (phase one of deletion; see
    /// [`FileStorage::delete_old_versions`]).
    fn delete_all(&self, ctx: &mut OpCtx<'_>, id: &str) -> Result<(), ScfsError>;

    /// Phase two of reclamation: attempts the pending release intents —
    /// deleting chunk blobs whose reference count reached zero and manifests
    /// no retained version uses — and marks the successful ones applied.
    /// Failed deletes leave their entries pending for the next pass, so a
    /// transient cloud error delays reclamation instead of leaking blobs.
    /// Best-effort: per-blob failures are counted in the report, not
    /// returned as errors.
    fn replay_release_journal(
        &self,
        ctx: &mut OpCtx<'_>,
        opts: &JournalOpts,
    ) -> Result<ReplayReport, ScfsError> {
        let _ = (ctx, opts);
        Ok(ReplayReport::default())
    }

    /// Number of release intents still pending (0 for backends without a
    /// journal).
    fn pending_releases(&self) -> usize {
        0
    }

    /// Installs a schedule controller driving the GC journal-replay order.
    /// Only the model checker calls this; backends without a journal (and
    /// test doubles) can ignore it — the default does nothing.
    fn install_schedule_controller(&self, slot: ControllerSlot) {
        let _ = slot;
    }

    /// Appends any violated storage invariants (chunkstore refcounts and
    /// journal bookkeeping) to `out`. Backends without a chunk store have
    /// nothing to check — the default reports nothing.
    fn check_invariants(&self, out: &mut Vec<InvariantViolation>) {
        let _ = out;
    }

    /// Propagates an ACL to the manifests storing `id` in the cloud(s).
    fn set_acl(&self, ctx: &mut OpCtx<'_>, id: &str, acl: &Acl) -> Result<(), ScfsError>;
}

/// The primitives each backend supplies: immutable blob storage for the two
/// blob kinds — **global chunks**, addressed by content hash alone and
/// always accessed under the chunk-store principal (the blanket impl builds
/// those contexts), and **per-object manifests**, addressed by `id|root` and
/// accessed under the calling user. Everything else — dirty-chunk selection,
/// refcounting, cross-file dedup, manifest commit, the release journal, ACL
/// fan-out — is the blanket [`FileStorage`] implementation below, written
/// once.
trait ChunkedBackend: Send + Sync {
    /// Short backend label for result tables.
    fn backend_label(&self) -> &'static str;

    /// Durability level a committed version reaches on this backend.
    fn backend_durability(&self) -> DurabilityLevel {
        DurabilityLevel::SingleCloud
    }

    /// The version registry and global chunk store of this instance.
    fn state(&self) -> &Mutex<StoreState>;

    /// Stores chunk `hash` in the global namespace (`ctx` carries the
    /// chunk-store principal).
    fn put_chunk(
        &self,
        ctx: &mut OpCtx<'_>,
        hash: &ContentHash,
        data: &[u8],
    ) -> Result<(), ScfsError>;

    /// Reads chunk `hash` from the global namespace, verifying its content.
    fn get_chunk(&self, ctx: &mut OpCtx<'_>, hash: &ContentHash) -> Result<Vec<u8>, ScfsError>;

    /// Deletes chunk `hash` from the global namespace; missing blobs are not
    /// an error (replay may race with another instance's collector).
    fn delete_chunk(&self, ctx: &mut OpCtx<'_>, hash: &ContentHash) -> Result<(), ScfsError>;

    /// Stores the manifest of `id` under `root`.
    fn put_manifest(
        &self,
        ctx: &mut OpCtx<'_>,
        id: &str,
        root: &ContentHash,
        data: &[u8],
    ) -> Result<(), ScfsError>;

    /// Reads back the manifest of `id` stored under `root`.
    fn get_manifest(
        &self,
        ctx: &mut OpCtx<'_>,
        id: &str,
        root: &ContentHash,
    ) -> Result<Vec<u8>, ScfsError>;

    /// Deletes the manifest of `id` under `root`; missing blobs are not an
    /// error.
    fn delete_manifest(
        &self,
        ctx: &mut OpCtx<'_>,
        id: &str,
        root: &ContentHash,
    ) -> Result<(), ScfsError>;

    /// Propagates an ACL to the manifest of `id` under `root`.
    fn set_manifest_acl(
        &self,
        ctx: &mut OpCtx<'_>,
        id: &str,
        root: &ContentHash,
        acl: &Acl,
    ) -> Result<(), ScfsError>;
}

impl<B: ChunkedBackend> FileStorage for B {
    fn label(&self) -> &'static str {
        self.backend_label()
    }

    fn cloud_durability(&self) -> DurabilityLevel {
        self.backend_durability()
    }

    fn write_version(
        &self,
        ctx: &mut OpCtx<'_>,
        id: &str,
        data: &[u8],
        map: &ChunkMap,
        prev: Option<&ChunkMap>,
        _is_new: bool,
        acl: Option<&Acl>,
        opts: &TransferOptions,
    ) -> Result<WriteOutcome, ScfsError> {
        let unique = map.unique_chunks();
        let (stored, own, tracked) = {
            let state = self.state().lock();
            let stored: HashSet<ContentHash> = unique
                .iter()
                .filter(|h| state.chunks.is_stored(h))
                .copied()
                .collect();
            (
                stored,
                state.registry.live_chunks(id),
                state.registry.tracks(id),
            )
        };
        // The chunk store is GC-aware: once the instance tracks `id`, the
        // refcounts alone decide which chunks are stored. `prev` is only
        // trusted on a fresh instance with no record — otherwise a chunk
        // that is clean relative to `prev` but already reclaimed would be
        // silently omitted, committing a version that can never be read.
        let prev_chunks: HashSet<ContentHash> = match prev {
            Some(prev) if !tracked => prev.chunks().iter().copied().collect(),
            _ => HashSet::new(),
        };
        let dedup_cross_file = unique
            .iter()
            .filter(|h| stored.contains(*h) && !own.contains(*h) && !prev_chunks.contains(*h))
            .count() as u64;
        let plan = TransferPlan::upload(map, |h| stored.contains(h) || prev_chunks.contains(h));
        let manifest = map.encode();
        let root = sha256(&manifest);
        {
            // Journal this write's uploads provisionally: if anything below
            // fails, the already-stored blobs are covered by pending release
            // intents and the next replay reclaims them — a failed write
            // must not orphan what it managed to upload.
            let mut state = self.state().lock();
            state
                .chunks
                .journal_provisional_uploads(plan.jobs().iter().map(|j| j.hash));
            state.chunks.release_manifest(id, root);
        }
        let (sizes, report) = execute_plan(ctx, opts, &plan, |job, fork_ctx| {
            let chunk = &data[map.byte_range(job.index)];
            // Chunks belong to the shared global namespace: they are written
            // under the chunk-store principal, never the calling user.
            let mut store_ctx = OpCtx::new(&mut *fork_ctx.clock, chunk_store_account());
            self.put_chunk(&mut store_ctx, &job.hash, chunk)?;
            Ok(chunk.len() as u64)
        })?;
        let mut bytes_uploaded: u64 = sizes.iter().sum();
        self.put_manifest(ctx, id, &root, &manifest)?;
        if let Some(acl) = acl {
            self.set_manifest_acl(ctx, id, &root, acl)?;
        }
        bytes_uploaded += manifest.len() as u64;
        {
            // The version is committed: take its references and cancel the
            // provisional intents (plus any stale pending release from an
            // earlier prune of the same root or chunks — a pending delete
            // must not destroy a blob just recommitted).
            let mut state = self.state().lock();
            state.chunks.cancel_manifest_release(id, &root);
            state.chunks.retain_version(&unique);
            state.chunks.cancel_chunk_releases(&unique);
            state.registry.push(id, root, map.clone());
        }
        Ok(WriteOutcome {
            root_hash: root,
            chunks_uploaded: report.chunks,
            bytes_uploaded,
            waves: report.waves,
            dedup_cross_file,
        })
    }

    fn copy_version(
        &self,
        ctx: &mut OpCtx<'_>,
        src_id: &str,
        dst_id: &str,
        root: &ContentHash,
        acl: Option<&Acl>,
    ) -> Result<Option<WriteOutcome>, ScfsError> {
        // The source map comes from the registry when this instance tracks
        // the version, otherwise from the cloud manifest.
        let map = match self.state().lock().registry.map_of(src_id, root) {
            Some(map) => map,
            None => self.read_manifest(ctx, src_id, root)?,
        };
        let unique = map.unique_chunks();
        {
            // Every referenced chunk must be globally stored (the live
            // source version guarantees that on the instance that wrote it);
            // otherwise a manifest-only copy would commit an unreadable
            // version — signal the caller to materialize instead.
            let mut state = self.state().lock();
            if !unique.iter().all(|h| state.chunks.is_stored(h)) {
                return Ok(None);
            }
            // Provisional release intent, exactly like `write_version`: if
            // the manifest put below fails, replay reclaims it.
            state.chunks.release_manifest(dst_id, *root);
        }
        let manifest = map.encode();
        self.put_manifest(ctx, dst_id, root, &manifest)?;
        if let Some(acl) = acl {
            self.set_manifest_acl(ctx, dst_id, root, acl)?;
        }
        {
            let mut state = self.state().lock();
            state.chunks.cancel_manifest_release(dst_id, root);
            state.chunks.retain_version(&unique);
            state.chunks.cancel_chunk_releases(&unique);
            state.registry.push(dst_id, *root, map);
        }
        Ok(Some(WriteOutcome {
            root_hash: *root,
            chunks_uploaded: 0,
            bytes_uploaded: manifest.len() as u64,
            waves: 0,
            dedup_cross_file: unique.len() as u64,
        }))
    }

    fn read_manifest(
        &self,
        ctx: &mut OpCtx<'_>,
        id: &str,
        hash: &ContentHash,
    ) -> Result<ChunkMap, ScfsError> {
        let bytes = self.get_manifest(ctx, id, hash)?;
        ChunkMap::decode(&bytes).map_err(|_| {
            StorageError::IntegrityViolation {
                key: id.to_string(),
            }
            .into()
        })
    }

    fn read_chunk(
        &self,
        ctx: &mut OpCtx<'_>,
        _id: &str,
        hash: &ContentHash,
    ) -> Result<Vec<u8>, ScfsError> {
        // Chunk reads go through the chunk-store principal: the caller's
        // right to the chunk was established by reading a manifest its ACL
        // admits it to, and the hash acts as the capability.
        let mut store_ctx = OpCtx::new(&mut *ctx.clock, chunk_store_account());
        self.get_chunk(&mut store_ctx, hash)
    }

    fn delete_old_versions(
        &self,
        _ctx: &mut OpCtx<'_>,
        id: &str,
        keep: usize,
    ) -> Result<usize, ScfsError> {
        let mut state = self.state().lock();
        let pruned = state.registry.prune(id, keep);
        for root in &pruned.manifests {
            state.chunks.release_manifest(id, *root);
        }
        for chunks in pruned.version_chunks {
            state.chunks.release_version(chunks);
        }
        Ok(pruned.removed)
    }

    fn delete_all(&self, _ctx: &mut OpCtx<'_>, id: &str) -> Result<(), ScfsError> {
        let mut state = self.state().lock();
        let pruned = state.registry.remove_all(id);
        for root in &pruned.manifests {
            state.chunks.release_manifest(id, *root);
        }
        for chunks in pruned.version_chunks {
            state.chunks.release_version(chunks);
        }
        Ok(())
    }

    fn replay_release_journal(
        &self,
        ctx: &mut OpCtx<'_>,
        opts: &JournalOpts,
    ) -> Result<ReplayReport, ScfsError> {
        let mut report = ReplayReport::default();
        let mut snapshot = {
            let state = self.state().lock();
            state.chunks.pending_snapshot(opts.replay_batch)
        };
        {
            // Model-checking seam: explore other replay interleavings of
            // this batch (the order entries of one pass race each other).
            // With no controller installed the snapshot order — oldest
            // first — is kept untouched.
            let slot = self.state().lock().controller.clone();
            slot.permute(ChoiceKind::JournalReplay, "gc-replay", &mut snapshot);
        }
        for entry in snapshot {
            report.attempted += 1;
            let retried = entry.attempts > 0;
            if retried {
                report.retried += 1;
            }
            let action = self.state().lock().chunks.decide(entry.seq);
            let deleted = match action {
                None => {
                    report.cancelled += 1;
                    continue;
                }
                Some(ReleaseTarget::Chunk(hash)) => {
                    let mut store_ctx = OpCtx::new(&mut *ctx.clock, chunk_store_account());
                    self.delete_chunk(&mut store_ctx, &hash)
                }
                Some(ReleaseTarget::Manifest { id, root }) => {
                    // The registry is the liveness authority for manifests
                    // (the analogue of the chunk refcount check in
                    // `decide`): a root a retained version still stores —
                    // e.g. one recommitted after this entry was journaled —
                    // is cancelled, never deleted.
                    let live = {
                        let mut state = self.state().lock();
                        if state.registry.live_manifests(&id).contains(&root) {
                            state.chunks.mark_applied(entry.seq);
                            true
                        } else {
                            false
                        }
                    };
                    if live {
                        report.cancelled += 1;
                        continue;
                    }
                    self.delete_manifest(ctx, &id, &root)
                }
            };
            let mut state = self.state().lock();
            match deleted {
                Ok(()) => {
                    state.chunks.mark_applied(entry.seq);
                    report.deleted += 1;
                    if retried {
                        report.reclaimed_after_retry += 1;
                    }
                }
                Err(_) => {
                    state.chunks.mark_failed(entry.seq);
                    report.errors += 1;
                }
            }
        }
        self.state().lock().chunks.compact(opts.keep_applied);
        Ok(report)
    }

    fn pending_releases(&self) -> usize {
        self.state().lock().chunks.pending_len()
    }

    fn install_schedule_controller(&self, slot: ControllerSlot) {
        self.state().lock().controller = slot;
    }

    fn check_invariants(&self, out: &mut Vec<InvariantViolation>) {
        self.state().lock().chunks.check_invariants(out);
    }

    fn set_acl(&self, ctx: &mut OpCtx<'_>, id: &str, acl: &Acl) -> Result<(), ScfsError> {
        let manifests = self.state().lock().registry.live_manifests(id);
        for root in &manifests {
            self.set_manifest_acl(ctx, id, root, acl)?;
        }
        Ok(())
    }
}

/// Single-cloud backend: chunks stored as objects under global
/// `scfs/chunks/{hash}` keys, manifests under per-object
/// `scfs/{id}/manifest/{hash}` keys, in one provider (the paper's AWS
/// backend uses Amazon S3).
pub struct SingleCloudStorage {
    cloud: Arc<dyn ObjectStore>,
    state: Mutex<StoreState>,
}

impl SingleCloudStorage {
    /// Creates a backend over one cloud.
    pub fn new(cloud: Arc<dyn ObjectStore>) -> Self {
        SingleCloudStorage {
            cloud,
            state: Mutex::new(StoreState::default()),
        }
    }

    /// The underlying cloud.
    pub fn cloud(&self) -> &Arc<dyn ObjectStore> {
        &self.cloud
    }

    /// Key of a chunk in the global, cross-file namespace.
    pub fn chunk_key(hash: &ContentHash) -> String {
        format!("scfs/chunks/{}", to_hex(hash))
    }

    /// Key of the manifest of `id` stored under `root`.
    pub fn manifest_key(id: &str, root: &ContentHash) -> String {
        format!("scfs/{id}/manifest/{}", to_hex(root))
    }

    /// Current global reference count of a chunk (test/diagnostic hook).
    pub fn chunk_refcount(&self, hash: &ContentHash) -> u64 {
        self.state.lock().chunks.refcount(hash)
    }

    /// The blobs that may legitimately exist in the cloud right now; feed a
    /// raw key listing to [`BlobAudit::orphans`] to assert the GC leaked
    /// nothing.
    pub fn blob_audit(&self) -> BlobAudit {
        self.state.lock().blob_audit()
    }

    fn verified_get(
        &self,
        ctx: &mut OpCtx<'_>,
        key: &str,
        hash: &ContentHash,
    ) -> Result<Vec<u8>, ScfsError> {
        let bytes = self.cloud.get(ctx, key)?;
        // Verify the content against the anchor hash (step r3 of Figure 3).
        if &sha256(&bytes) != hash {
            return Err(StorageError::IntegrityViolation {
                key: key.to_string(),
            }
            .into());
        }
        Ok(bytes)
    }

    fn tolerant_delete(&self, ctx: &mut OpCtx<'_>, key: &str) -> Result<(), ScfsError> {
        match self.cloud.delete(ctx, key) {
            // AccessDenied mirrors set_manifest_acl: a collaborator-written
            // blob is owned by its writer, and when the write-time ACL grant
            // failed to reach it, retrying a delete under this account could
            // never succeed — surrendering the blob to its owner beats a
            // journal entry that livelocks forever.
            Ok(())
            | Err(StorageError::NotFound { .. })
            | Err(StorageError::AccessDenied { .. }) => Ok(()),
            Err(e) => Err(e.into()),
        }
    }
}

impl ChunkedBackend for SingleCloudStorage {
    fn backend_label(&self) -> &'static str {
        "AWS"
    }

    fn state(&self) -> &Mutex<StoreState> {
        &self.state
    }

    fn put_chunk(
        &self,
        ctx: &mut OpCtx<'_>,
        hash: &ContentHash,
        data: &[u8],
    ) -> Result<(), ScfsError> {
        Ok(self.cloud.put(ctx, &Self::chunk_key(hash), data)?)
    }

    fn get_chunk(&self, ctx: &mut OpCtx<'_>, hash: &ContentHash) -> Result<Vec<u8>, ScfsError> {
        self.verified_get(ctx, &Self::chunk_key(hash), hash)
    }

    fn delete_chunk(&self, ctx: &mut OpCtx<'_>, hash: &ContentHash) -> Result<(), ScfsError> {
        self.tolerant_delete(ctx, &Self::chunk_key(hash))
    }

    fn put_manifest(
        &self,
        ctx: &mut OpCtx<'_>,
        id: &str,
        root: &ContentHash,
        data: &[u8],
    ) -> Result<(), ScfsError> {
        Ok(self.cloud.put(ctx, &Self::manifest_key(id, root), data)?)
    }

    fn get_manifest(
        &self,
        ctx: &mut OpCtx<'_>,
        id: &str,
        root: &ContentHash,
    ) -> Result<Vec<u8>, ScfsError> {
        self.verified_get(ctx, &Self::manifest_key(id, root), root)
    }

    fn delete_manifest(
        &self,
        ctx: &mut OpCtx<'_>,
        id: &str,
        root: &ContentHash,
    ) -> Result<(), ScfsError> {
        self.tolerant_delete(ctx, &Self::manifest_key(id, root))
    }

    fn set_manifest_acl(
        &self,
        ctx: &mut OpCtx<'_>,
        id: &str,
        root: &ContentHash,
        acl: &Acl,
    ) -> Result<(), ScfsError> {
        match self
            .cloud
            .set_acl(ctx, &Self::manifest_key(id, root), acl.clone())
        {
            // Versions written by other collaborators are owned by them;
            // only their writer can retag those objects, so skip them.
            Ok(())
            | Err(StorageError::NotFound { .. })
            | Err(StorageError::AccessDenied { .. }) => Ok(()),
            Err(e) => Err(e.into()),
        }
    }
}

/// Cloud-of-clouds backend: chunks stored through DepSky-CA as immutable
/// single-version data units in the global `chunks|{hash}` namespace,
/// manifests as per-object `{id}|{hash}` units.
pub struct CloudOfCloudsStorage {
    depsky: DepSkyClient,
    state: Mutex<StoreState>,
}

impl CloudOfCloudsStorage {
    /// Creates a backend over a DepSky client.
    pub fn new(depsky: DepSkyClient) -> Self {
        CloudOfCloudsStorage {
            depsky,
            state: Mutex::new(StoreState::default()),
        }
    }

    /// The underlying DepSky client.
    pub fn depsky(&self) -> &DepSkyClient {
        &self.depsky
    }

    /// Current global reference count of a chunk (test/diagnostic hook).
    pub fn chunk_refcount(&self, hash: &ContentHash) -> u64 {
        self.state.lock().chunks.refcount(hash)
    }

    /// The blobs that may legitimately exist in the clouds right now; see
    /// [`SingleCloudStorage::blob_audit`].
    pub fn blob_audit(&self) -> BlobAudit {
        self.state.lock().blob_audit()
    }
}

impl ChunkedBackend for CloudOfCloudsStorage {
    fn backend_label(&self) -> &'static str {
        "CoC"
    }

    fn backend_durability(&self) -> DurabilityLevel {
        DurabilityLevel::CloudOfClouds
    }

    fn state(&self) -> &Mutex<StoreState> {
        &self.state
    }

    fn put_chunk(
        &self,
        ctx: &mut OpCtx<'_>,
        hash: &ContentHash,
        data: &[u8],
    ) -> Result<(), ScfsError> {
        Ok(self
            .depsky
            .write_blob(ctx, DepSkyClient::GLOBAL_CHUNK_BASE, hash, data)?)
    }

    fn get_chunk(&self, ctx: &mut OpCtx<'_>, hash: &ContentHash) -> Result<Vec<u8>, ScfsError> {
        Ok(self
            .depsky
            .read_blob(ctx, DepSkyClient::GLOBAL_CHUNK_BASE, hash)?)
    }

    fn delete_chunk(&self, ctx: &mut OpCtx<'_>, hash: &ContentHash) -> Result<(), ScfsError> {
        Ok(self
            .depsky
            .delete_blob(ctx, DepSkyClient::GLOBAL_CHUNK_BASE, hash)?)
    }

    fn put_manifest(
        &self,
        ctx: &mut OpCtx<'_>,
        id: &str,
        root: &ContentHash,
        data: &[u8],
    ) -> Result<(), ScfsError> {
        Ok(self.depsky.write_blob(ctx, id, root, data)?)
    }

    fn get_manifest(
        &self,
        ctx: &mut OpCtx<'_>,
        id: &str,
        root: &ContentHash,
    ) -> Result<Vec<u8>, ScfsError> {
        Ok(self.depsky.read_blob(ctx, id, root)?)
    }

    fn delete_manifest(
        &self,
        ctx: &mut OpCtx<'_>,
        id: &str,
        root: &ContentHash,
    ) -> Result<(), ScfsError> {
        Ok(self.depsky.delete_blob(ctx, id, root)?)
    }

    fn set_manifest_acl(
        &self,
        ctx: &mut OpCtx<'_>,
        id: &str,
        root: &ContentHash,
        acl: &Acl,
    ) -> Result<(), ScfsError> {
        Ok(self.depsky.set_blob_acl(ctx, id, root, acl)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunkstore::KeyStyle;
    use crate::transfer::TransferOptions;
    use cloud_store::providers::ProviderSet;
    use cloud_store::sim_cloud::SimulatedCloud;
    use depsky::config::DepSkyConfig;
    use sim_core::fault::FaultPlan;
    use sim_core::time::{Clock, SimDuration, SimInstant};

    const CHUNK: usize = 1024;

    fn single() -> SingleCloudStorage {
        SingleCloudStorage::new(Arc::new(SimulatedCloud::test("s3")))
    }

    fn single_with_cloud() -> (SingleCloudStorage, Arc<SimulatedCloud>) {
        let cloud = Arc::new(SimulatedCloud::test("s3"));
        (SingleCloudStorage::new(cloud.clone()), cloud)
    }

    fn coc() -> CloudOfCloudsStorage {
        let clouds: Vec<Arc<dyn ObjectStore>> = ProviderSet::test_backend(4)
            .into_iter()
            .enumerate()
            .map(|(i, p)| Arc::new(SimulatedCloud::new(p, i as u64)) as Arc<dyn ObjectStore>)
            .collect();
        CloudOfCloudsStorage::new(
            DepSkyClient::new(clouds, DepSkyConfig::scfs_default(), 1).unwrap(),
        )
    }

    fn write(
        storage: &dyn FileStorage,
        ctx: &mut OpCtx<'_>,
        id: &str,
        data: &[u8],
        prev: Option<&ChunkMap>,
        is_new: bool,
    ) -> (WriteOutcome, ChunkMap) {
        let map = ChunkMap::build(data, CHUNK);
        let outcome = storage
            .write_version(
                ctx,
                id,
                data,
                &map,
                prev,
                is_new,
                None,
                &TransferOptions::default(),
            )
            .unwrap();
        (outcome, map)
    }

    fn replay(storage: &dyn FileStorage, ctx: &mut OpCtx<'_>) -> ReplayReport {
        storage
            .replay_release_journal(ctx, &JournalOpts::default())
            .unwrap()
    }

    fn run_round_trip(storage: &dyn FileStorage) {
        let mut clock = Clock::new();
        let mut ctx = OpCtx::new(&mut clock, "alice".into());
        let v1 = vec![1u8; 3000];
        let mut v2 = v1.clone();
        v2.extend_from_slice(b"appended tail");
        let (o1, m1) = write(storage, &mut ctx, "file-1", &v1, None, true);
        let (o2, _) = write(storage, &mut ctx, "file-1", &v2, Some(&m1), false);
        assert_ne!(o1.root_hash, o2.root_hash);
        assert_eq!(
            storage
                .read_version(
                    &mut ctx,
                    "file-1",
                    &o1.root_hash,
                    &TransferOptions::default()
                )
                .unwrap(),
            v1
        );
        assert_eq!(
            storage
                .read_version(
                    &mut ctx,
                    "file-1",
                    &o2.root_hash,
                    &TransferOptions::default()
                )
                .unwrap(),
            v2
        );
    }

    #[test]
    fn single_cloud_round_trip() {
        run_round_trip(&single());
    }

    #[test]
    fn cloud_of_clouds_round_trip() {
        run_round_trip(&coc());
    }

    fn run_append_uploads_only_dirty_chunks(storage: &dyn FileStorage) {
        let mut clock = Clock::new();
        let mut ctx = OpCtx::new(&mut clock, "alice".into());
        // 8 chunks of random-ish distinct content.
        let mut v1 = Vec::new();
        for i in 0..8u8 {
            v1.extend(std::iter::repeat_n(i, CHUNK));
        }
        let (o1, m1) = write(storage, &mut ctx, "f", &v1, None, true);
        assert_eq!(o1.chunks_uploaded, 8);
        // Append less than one chunk: exactly one new chunk moves.
        let mut v2 = v1.clone();
        v2.extend_from_slice(&[0xAA; 100]);
        let (o2, m2) = write(storage, &mut ctx, "f", &v2, Some(&m1), false);
        assert_eq!(o2.chunks_uploaded, 1);
        assert!(o2.bytes_uploaded < 2 * CHUNK as u64);
        assert_eq!(o2.dedup_cross_file, 0, "reuse of own chunks is not a hit");
        // Rewriting identical content uploads no chunks at all.
        let (o3, _) = write(storage, &mut ctx, "f", &v2, Some(&m2), false);
        assert_eq!(o3.chunks_uploaded, 0);
        assert_eq!(o3.root_hash, o2.root_hash);
    }

    #[test]
    fn single_cloud_append_uploads_only_dirty_chunks() {
        run_append_uploads_only_dirty_chunks(&single());
    }

    #[test]
    fn cloud_of_clouds_append_uploads_only_dirty_chunks() {
        run_append_uploads_only_dirty_chunks(&coc());
    }

    fn run_cross_file_dedup(storage: &dyn FileStorage) {
        let mut clock = Clock::new();
        let mut ctx = OpCtx::new(&mut clock, "alice".into());
        let mut data = Vec::new();
        for i in 0..4u8 {
            data.extend(std::iter::repeat_n(0xC0 | i, CHUNK));
        }
        let (o1, _) = write(storage, &mut ctx, "alice-f1", &data, None, true);
        assert_eq!(o1.chunks_uploaded, 4);
        assert_eq!(o1.dedup_cross_file, 0);
        // The same content under a *different* object id — and a different
        // user — moves zero chunks: the global chunk store already has them.
        let mut bob_ctx = OpCtx::new(ctx.clock, "bob".into());
        let (o2, _) = write(storage, &mut bob_ctx, "bob-f1", &data, None, true);
        assert_eq!(o2.chunks_uploaded, 0, "identical content moves once");
        assert_eq!(o2.dedup_cross_file, 4, "all four chunks were global hits");
        // Both files read back fully, under their own manifests.
        assert_eq!(
            storage
                .read_version(
                    &mut bob_ctx,
                    "bob-f1",
                    &o2.root_hash,
                    &TransferOptions::default()
                )
                .unwrap(),
            data
        );
    }

    #[test]
    fn single_cloud_cross_file_dedup_uploads_once() {
        run_cross_file_dedup(&single());
    }

    #[test]
    fn cloud_of_clouds_cross_file_dedup_uploads_once() {
        run_cross_file_dedup(&coc());
    }

    fn run_shared_chunk_survives_other_files_gc(storage: &dyn FileStorage) {
        let mut clock = Clock::new();
        let mut ctx = OpCtx::new(&mut clock, "alice".into());
        let data = vec![0xEEu8; 2 * CHUNK];
        let (_, _) = write(storage, &mut ctx, "f1", &data, None, true);
        let (o2, _) = write(storage, &mut ctx, "f2", &data, None, true);
        // Deleting f1 releases its references but must not reclaim the
        // chunks f2 still holds.
        storage.delete_all(&mut ctx, "f1").unwrap();
        let report = replay(storage, &mut ctx);
        assert_eq!(report.errors, 0);
        assert!(
            report.deleted >= 1,
            "f1's manifest is reclaimed once nothing references it"
        );
        assert_eq!(
            storage
                .read_version(&mut ctx, "f2", &o2.root_hash, &TransferOptions::default())
                .unwrap(),
            data
        );
        assert_eq!(storage.pending_releases(), 0);
    }

    #[test]
    fn single_cloud_shared_chunk_survives_other_files_gc() {
        run_shared_chunk_survives_other_files_gc(&single());
    }

    #[test]
    fn cloud_of_clouds_shared_chunk_survives_other_files_gc() {
        run_shared_chunk_survives_other_files_gc(&coc());
    }

    #[test]
    fn stale_prev_map_does_not_skip_gc_reclaimed_chunks() {
        // A writer whose prev map predates a GC cycle must not trust it:
        // chunks that are clean relative to prev may already be reclaimed,
        // and skipping them would commit an unreadable version.
        let storage = single();
        let mut clock = Clock::new();
        let mut ctx = OpCtx::new(&mut clock, "alice".into());
        let mut data = vec![0u8; 2 * CHUNK];
        data[..CHUNK].fill(0xA1); // chunk 0, unique to v1's lineage start
        let (_, m1) = write(&storage, &mut ctx, "f", &data, None, true);
        // Newer versions replace chunk 0, so the GC reclaims it.
        let mut prev = m1.clone();
        for i in 1..4u8 {
            data[..CHUNK].fill(i);
            let (_, m) = write(&storage, &mut ctx, "f", &data, Some(&prev), false);
            prev = m;
        }
        assert!(storage.delete_old_versions(&mut ctx, "f", 1).unwrap() > 0);
        assert!(replay(&storage, &mut ctx).deleted > 0);
        // Rewrite the v1 content with the stale m1 as prev: every chunk of
        // the new version must be readable, even those m1 claims exist.
        data[..CHUNK].fill(0xA1);
        let (o, _) = write(&storage, &mut ctx, "f", &data, Some(&m1), false);
        assert_eq!(
            storage
                .read_version(&mut ctx, "f", &o.root_hash, &TransferOptions::default())
                .unwrap(),
            data
        );
    }

    #[test]
    fn identical_chunks_are_deduplicated_within_a_version() {
        let storage = single();
        let mut clock = Clock::new();
        let mut ctx = OpCtx::new(&mut clock, "alice".into());
        // Four identical chunks: one upload.
        let data = vec![5u8; 4 * CHUNK];
        let (o, _) = write(&storage, &mut ctx, "f", &data, None, true);
        assert_eq!(o.chunks_uploaded, 1);
    }

    #[test]
    fn empty_files_round_trip() {
        for storage in [&single() as &dyn FileStorage, &coc() as &dyn FileStorage] {
            let mut clock = Clock::new();
            let mut ctx = OpCtx::new(&mut clock, "alice".into());
            let (o, _) = write(storage, &mut ctx, "f", &[], None, true);
            assert_eq!(o.chunks_uploaded, 0);
            assert_eq!(
                storage
                    .read_version(&mut ctx, "f", &o.root_hash, &TransferOptions::default())
                    .unwrap(),
                Vec::<u8>::new()
            );
        }
    }

    #[test]
    fn labels_identify_backends() {
        assert_eq!(single().label(), "AWS");
        assert_eq!(coc().label(), "CoC");
    }

    fn run_gc_reclaims_per_chunk(storage: &dyn FileStorage) {
        let mut clock = Clock::new();
        let mut ctx = OpCtx::new(&mut clock, "alice".into());
        let mut maps: Vec<ChunkMap> = Vec::new();
        let mut outcomes = Vec::new();
        let mut data = vec![0u8; 2 * CHUNK];
        for i in 0..5u8 {
            // Each version rewrites the last chunk only; chunk 0 is shared by
            // all versions.
            data[2 * CHUNK - 1] = i;
            let prev = maps.last().cloned();
            let (o, m) = write(storage, &mut ctx, "f", &data, prev.as_ref(), i == 0);
            maps.push(m);
            outcomes.push(o);
        }
        let removed = storage.delete_old_versions(&mut ctx, "f", 2).unwrap();
        assert_eq!(removed, 3);
        let report = replay(storage, &mut ctx);
        assert_eq!(report.errors, 0);
        assert_eq!(storage.pending_releases(), 0);
        // Newest versions survive — including the shared first chunk.
        assert!(storage
            .read_version(
                &mut ctx,
                "f",
                &outcomes[4].root_hash,
                &TransferOptions::default()
            )
            .is_ok());
        assert!(storage
            .read_version(
                &mut ctx,
                "f",
                &outcomes[3].root_hash,
                &TransferOptions::default()
            )
            .is_ok());
        // Oldest versions are gone.
        assert!(storage
            .read_version(
                &mut ctx,
                "f",
                &outcomes[0].root_hash,
                &TransferOptions::default()
            )
            .is_err());
        assert_eq!(storage.delete_old_versions(&mut ctx, "f", 2).unwrap(), 0);
    }

    #[test]
    fn single_cloud_gc_reclaims_per_chunk() {
        run_gc_reclaims_per_chunk(&single());
    }

    #[test]
    fn cloud_of_clouds_gc_reclaims_per_chunk() {
        run_gc_reclaims_per_chunk(&coc());
    }

    #[test]
    fn single_cloud_delete_all() {
        let storage = single();
        let mut clock = Clock::new();
        let mut ctx = OpCtx::new(&mut clock, "alice".into());
        let (o, _) = write(&storage, &mut ctx, "f", b"data", None, true);
        storage.delete_all(&mut ctx, "f").unwrap();
        assert!(replay(&storage, &mut ctx).deleted > 0);
        assert!(storage
            .read_version(&mut ctx, "f", &o.root_hash, &TransferOptions::default())
            .is_err());
    }

    #[test]
    fn failed_deletes_stay_journaled_and_a_retry_reclaims_everything() {
        // The orphan-leak regression: a delete fault mid-reclamation must
        // leave retryable journal entries, and the next cycle must reclaim
        // every blob — the old `?`-aborting collector lost them forever.
        let (storage, cloud) = single_with_cloud();
        let mut clock = Clock::new();
        let mut ctx = OpCtx::new(&mut clock, "alice".into());
        let mut data = vec![0u8; 3 * CHUNK];
        let mut prev: Option<ChunkMap> = None;
        for i in 0..4u8 {
            data.fill(0x10 | i);
            let (_, m) = write(&storage, &mut ctx, "f", &data, prev.as_ref(), i == 0);
            prev = Some(m);
        }
        assert_eq!(storage.delete_old_versions(&mut ctx, "f", 1).unwrap(), 3);
        let pending_before = storage.pending_releases();
        assert!(pending_before > 0);

        // Every delete during the outage fails; the entries stay pending.
        cloud.set_fault_plan(
            FaultPlan::outage(
                SimInstant::EPOCH,
                ctx.clock.now() + SimDuration::from_secs(60),
            ),
            7,
        );
        let faulty = replay(&storage, &mut ctx);
        assert_eq!(faulty.deleted, 0);
        assert_eq!(faulty.errors as usize, pending_before);
        assert_eq!(storage.pending_releases(), pending_before, "nothing lost");
        assert!(
            storage
                .blob_audit()
                .orphans(KeyStyle::Aws, cloud.stored_keys("scfs/"))
                .is_empty(),
            "pending entries keep every blob reachable"
        );

        // The outage ends; the retry pass reclaims every orphan.
        ctx.clock.advance(SimDuration::from_secs(120));
        let healed = replay(&storage, &mut ctx);
        assert_eq!(healed.errors, 0);
        assert_eq!(healed.retried as usize, pending_before);
        assert!(healed.reclaimed_after_retry > 0);
        assert_eq!(storage.pending_releases(), 0);
        assert!(
            storage
                .blob_audit()
                .orphans(KeyStyle::Aws, cloud.stored_keys("scfs/"))
                .is_empty(),
            "zero orphans after the retry cycle"
        );
    }

    /// A cloud whose manifest puts fail while `failing` is set — for
    /// testing that a write aborted after its chunk uploads leaves no
    /// orphans.
    struct ManifestPutFails {
        inner: Arc<SimulatedCloud>,
        failing: std::sync::atomic::AtomicBool,
    }

    impl ManifestPutFails {
        fn new(inner: Arc<SimulatedCloud>) -> Self {
            ManifestPutFails {
                inner,
                failing: std::sync::atomic::AtomicBool::new(false),
            }
        }

        fn set_failing(&self, on: bool) {
            self.failing.store(on, std::sync::atomic::Ordering::SeqCst);
        }
    }

    impl ObjectStore for ManifestPutFails {
        fn id(&self) -> &str {
            self.inner.id()
        }

        fn profile(&self) -> &cloud_store::providers::ProviderProfile {
            self.inner.profile()
        }

        fn put(&self, ctx: &mut OpCtx<'_>, key: &str, data: &[u8]) -> Result<(), StorageError> {
            if key.contains("/manifest/") && self.failing.load(std::sync::atomic::Ordering::SeqCst)
            {
                return Err(StorageError::unavailable("injected manifest-put fault"));
            }
            self.inner.put(ctx, key, data)
        }

        fn get(&self, ctx: &mut OpCtx<'_>, key: &str) -> Result<Vec<u8>, StorageError> {
            self.inner.get(ctx, key)
        }

        fn head(
            &self,
            ctx: &mut OpCtx<'_>,
            key: &str,
        ) -> Result<cloud_store::types::ObjectMeta, StorageError> {
            self.inner.head(ctx, key)
        }

        fn delete(&self, ctx: &mut OpCtx<'_>, key: &str) -> Result<(), StorageError> {
            self.inner.delete(ctx, key)
        }

        fn list(&self, ctx: &mut OpCtx<'_>, prefix: &str) -> Result<Vec<String>, StorageError> {
            self.inner.list(ctx, prefix)
        }

        fn set_acl(&self, ctx: &mut OpCtx<'_>, key: &str, acl: Acl) -> Result<(), StorageError> {
            self.inner.set_acl(ctx, key, acl)
        }

        fn get_acl(&self, ctx: &mut OpCtx<'_>, key: &str) -> Result<Acl, StorageError> {
            self.inner.get_acl(ctx, key)
        }
    }

    #[test]
    fn failed_write_version_leaves_no_orphaned_chunks() {
        let sim = Arc::new(SimulatedCloud::test("s3"));
        let faulty = Arc::new(ManifestPutFails::new(sim.clone()));
        let storage = SingleCloudStorage::new(faulty.clone());
        let mut clock = Clock::new();
        let mut ctx = OpCtx::new(&mut clock, "alice".into());
        let data = vec![0x77u8; 3 * CHUNK];
        let map = ChunkMap::build(&data, CHUNK);

        // The chunks upload, then the manifest put fails: the write errors
        // out after blobs already reached the cloud.
        faulty.set_failing(true);
        assert!(storage
            .write_version(
                &mut ctx,
                "f",
                &data,
                &map,
                None,
                true,
                None,
                &TransferOptions::default(),
            )
            .is_err());
        assert!(!sim.stored_keys("scfs/chunks/").is_empty());
        // The provisional journal entries keep the partial blobs reachable…
        assert!(storage
            .blob_audit()
            .orphans(KeyStyle::Aws, sim.stored_keys("scfs/"))
            .is_empty());
        // …and replay reclaims them (the version never committed).
        faulty.set_failing(false);
        let report = replay(&storage, &mut ctx);
        assert_eq!(report.errors, 0);
        assert!(
            sim.stored_keys("scfs/").is_empty(),
            "partial write reclaimed"
        );
        assert_eq!(storage.pending_releases(), 0);

        // The file is still writable afterwards, end to end.
        let (o, _) = write(&storage, &mut ctx, "f", &data, None, true);
        assert_eq!(
            storage
                .read_version(&mut ctx, "f", &o.root_hash, &TransferOptions::default())
                .unwrap(),
            data
        );
    }

    #[test]
    fn rewriting_a_pruned_root_cancels_its_pending_manifest_release() {
        let (storage, cloud) = single_with_cloud();
        let mut clock = Clock::new();
        let mut ctx = OpCtx::new(&mut clock, "alice".into());
        let v1 = vec![1u8; CHUNK];
        let v2 = vec![2u8; CHUNK];
        let (o1, m1) = write(&storage, &mut ctx, "f", &v1, None, true);
        let (_, m2) = write(&storage, &mut ctx, "f", &v2, Some(&m1), false);
        // Prune v1 but fail its deletes: the release stays pending.
        cloud.set_fault_plan(
            FaultPlan::outage(
                SimInstant::EPOCH,
                ctx.clock.now() + SimDuration::from_secs(60),
            ),
            3,
        );
        storage.delete_old_versions(&mut ctx, "f", 1).unwrap();
        assert!(replay(&storage, &mut ctx).errors > 0);
        ctx.clock.advance(SimDuration::from_secs(120));
        // v1's exact content comes back before the retry runs.
        let (o3, _) = write(&storage, &mut ctx, "f", &v1, Some(&m2), false);
        assert_eq!(o3.root_hash, o1.root_hash);
        // The retry must not destroy the recommitted manifest or chunk.
        let report = replay(&storage, &mut ctx);
        assert_eq!(report.errors, 0);
        assert_eq!(
            storage
                .read_version(&mut ctx, "f", &o3.root_hash, &TransferOptions::default())
                .unwrap(),
            v1
        );
    }

    #[test]
    fn missing_version_is_transient_not_found() {
        let storage = single();
        let mut clock = Clock::new();
        let mut ctx = OpCtx::new(&mut clock, "alice".into());
        let missing = sha256(b"never written");
        match storage.read_manifest(&mut ctx, "f", &missing) {
            Err(ScfsError::Storage(e)) => assert!(e.is_transient()),
            other => panic!("expected transient storage error, got {other:?}"),
        }
    }
}
