//! Durability levels (paper Table 1).
//!
//! Data written through SCFS moves through up to four durability levels,
//! depending on which system call completed and which backend is in use:
//!
//! | Level | Location        | Latency      | Tolerates          | Call    |
//! |-------|-----------------|--------------|--------------------|---------|
//! | 0     | main memory     | microseconds | nothing            | `write` |
//! | 1     | local disk      | milliseconds | process/OS crash   | `fsync` |
//! | 2     | single cloud    | seconds      | local disk failure | `close` |
//! | 3     | cloud-of-clouds | seconds      | f cloud providers  | `close` |
//!
//! # `sync(handle)`: explicit durability promotion
//!
//! The table describes what each call guarantees *when it returns* — and in
//! the non-blocking and non-sharing modes a `close` returns at level 1, with
//! levels 2/3 reached only when the background upload's completion token
//! fires. [`crate::fs::FileSystem::sync`] is the explicit promotion call
//! that closes this gap on demand, per object:
//!
//! * a dirty (or never-uploaded) handle is chunked, spilled to the local
//!   disk (level 1) and committed to the backend synchronously, exactly like
//!   a blocking close but without releasing the handle;
//! * a clean handle with an in-flight background upload waits on *that
//!   object's* [`sim_core::background::Pending`] token — not on the global
//!   drain horizon;
//! * either way `sync` returns the level the backend provides:
//!   [`DurabilityLevel::SingleCloud`] (2) on AWS,
//!   [`DurabilityLevel::CloudOfClouds`] (3) on the cloud-of-clouds —
//!   regardless of the agent's operation mode ([`level_on_return`] with
//!   [`SysCall::Sync`]).
//!
//! A second mount of the same account reaches the same point without the
//! handle: the writer surfaces its upload token
//! (`ScfsAgent::upload_token`), and the other mount waits on it precisely
//! instead of sleeping past a drain estimate.

use crate::config::Mode;

/// The durability level reached by a write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DurabilityLevel {
    /// Level 0: the data is only in the agent's main memory.
    MainMemory,
    /// Level 1: the data reached the local disk.
    LocalDisk,
    /// Level 2: the data reached a single storage cloud.
    SingleCloud,
    /// Level 3: the data reached a quorum of clouds in a cloud-of-clouds.
    CloudOfClouds,
}

impl DurabilityLevel {
    /// The numeric level used in Table 1.
    pub fn level(&self) -> u8 {
        match self {
            DurabilityLevel::MainMemory => 0,
            DurabilityLevel::LocalDisk => 1,
            DurabilityLevel::SingleCloud => 2,
            DurabilityLevel::CloudOfClouds => 3,
        }
    }

    /// The failures this level tolerates, as described in Table 1.
    pub fn tolerates(&self) -> &'static str {
        match self {
            DurabilityLevel::MainMemory => "none",
            DurabilityLevel::LocalDisk => "process/OS crash",
            DurabilityLevel::SingleCloud => "local disk failure",
            DurabilityLevel::CloudOfClouds => "f cloud provider failures",
        }
    }

    /// Typical write latency magnitude of this level, as described in Table 1.
    pub fn latency_scale(&self) -> &'static str {
        match self {
            DurabilityLevel::MainMemory => "microseconds",
            DurabilityLevel::LocalDisk => "milliseconds",
            DurabilityLevel::SingleCloud | DurabilityLevel::CloudOfClouds => "seconds",
        }
    }
}

/// The system call classes of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SysCall {
    /// A `write` on an open file.
    Write,
    /// An `fsync` of an open file.
    Fsync,
    /// A `close` of a modified file.
    Close,
    /// A `sync` of an open file: explicit promotion to cloud durability.
    Sync,
}

/// The durability level guaranteed *when the call returns*, for a given
/// backend (`cloud_of_clouds`) and operation mode.
///
/// In blocking mode `close` waits for the cloud upload, so it returns at
/// level 2 or 3; in the non-blocking and non-sharing modes `close` returns
/// after the local-disk write (level 1) and the cloud level is only reached
/// when the background upload completes.
pub fn level_on_return(call: SysCall, mode: Mode, cloud_of_clouds: bool) -> DurabilityLevel {
    match call {
        SysCall::Write => DurabilityLevel::MainMemory,
        SysCall::Fsync => DurabilityLevel::LocalDisk,
        SysCall::Close => {
            if mode.blocking_close() {
                cloud_level(cloud_of_clouds)
            } else {
                DurabilityLevel::LocalDisk
            }
        }
        // `sync` blocks until the object's version commit (pending or
        // started by the call itself) lands in the cloud, in every mode.
        SysCall::Sync => cloud_level(cloud_of_clouds),
    }
}

/// The durability level *eventually* reached once background uploads drain.
pub fn level_eventually(call: SysCall, cloud_of_clouds: bool) -> DurabilityLevel {
    match call {
        SysCall::Write => DurabilityLevel::MainMemory,
        SysCall::Fsync => DurabilityLevel::LocalDisk,
        SysCall::Close | SysCall::Sync => cloud_level(cloud_of_clouds),
    }
}

/// Level 2 or 3, depending on the backend (Table 1's two cloud rows).
pub fn cloud_level(cloud_of_clouds: bool) -> DurabilityLevel {
    if cloud_of_clouds {
        DurabilityLevel::CloudOfClouds
    } else {
        DurabilityLevel::SingleCloud
    }
}

/// One row of Table 1, for the `reproduce` binary.
pub fn table1_rows() -> Vec<(u8, &'static str, &'static str, &'static str, &'static str)> {
    vec![
        (0, "main memory", "microseconds", "none", "write"),
        (1, "local disk", "milliseconds", "process/OS crash", "fsync"),
        (2, "cloud", "seconds", "local disk failure", "close"),
        (
            3,
            "cloud-of-clouds",
            "seconds",
            "f cloud provider failures",
            "close",
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_ordered() {
        assert!(DurabilityLevel::MainMemory < DurabilityLevel::LocalDisk);
        assert!(DurabilityLevel::LocalDisk < DurabilityLevel::SingleCloud);
        assert!(DurabilityLevel::SingleCloud < DurabilityLevel::CloudOfClouds);
        assert_eq!(DurabilityLevel::CloudOfClouds.level(), 3);
    }

    #[test]
    fn table1_mapping_for_blocking_mode() {
        assert_eq!(
            level_on_return(SysCall::Write, Mode::Blocking, true),
            DurabilityLevel::MainMemory
        );
        assert_eq!(
            level_on_return(SysCall::Fsync, Mode::Blocking, false),
            DurabilityLevel::LocalDisk
        );
        assert_eq!(
            level_on_return(SysCall::Close, Mode::Blocking, false),
            DurabilityLevel::SingleCloud
        );
        assert_eq!(
            level_on_return(SysCall::Close, Mode::Blocking, true),
            DurabilityLevel::CloudOfClouds
        );
    }

    #[test]
    fn sync_promotes_to_cloud_level_in_every_mode() {
        for mode in [Mode::Blocking, Mode::NonBlocking, Mode::NonSharing] {
            assert_eq!(
                level_on_return(SysCall::Sync, mode, false),
                DurabilityLevel::SingleCloud
            );
            assert_eq!(
                level_on_return(SysCall::Sync, mode, true),
                DurabilityLevel::CloudOfClouds
            );
        }
        assert_eq!(
            level_eventually(SysCall::Sync, true),
            DurabilityLevel::CloudOfClouds
        );
        assert_eq!(cloud_level(false), DurabilityLevel::SingleCloud);
    }

    #[test]
    fn non_blocking_close_returns_at_disk_level_but_eventually_reaches_cloud() {
        assert_eq!(
            level_on_return(SysCall::Close, Mode::NonBlocking, true),
            DurabilityLevel::LocalDisk
        );
        assert_eq!(
            level_eventually(SysCall::Close, true),
            DurabilityLevel::CloudOfClouds
        );
        assert_eq!(
            level_eventually(SysCall::Close, false),
            DurabilityLevel::SingleCloud
        );
    }

    #[test]
    fn table1_has_four_rows_with_expected_calls() {
        let rows = table1_rows();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].4, "write");
        assert_eq!(rows[1].4, "fsync");
        assert_eq!(rows[3].1, "cloud-of-clouds");
    }

    #[test]
    fn descriptions_are_nonempty() {
        for level in [
            DurabilityLevel::MainMemory,
            DurabilityLevel::LocalDisk,
            DurabilityLevel::SingleCloud,
            DurabilityLevel::CloudOfClouds,
        ] {
            assert!(!level.tolerates().is_empty());
            assert!(!level.latency_scale().is_empty());
        }
    }
}
