//! Structural invariants, reported rather than asserted.
//!
//! The model checker (`scfs-check`) runs scenarios under adversarial
//! schedules and needs to *observe* invariant violations — a `debug_assert`
//! would abort the exploration at the first counterexample instead of
//! letting the explorer record, shrink and serialize it. So the structures
//! that carry cross-schedule invariants (the chunkstore's refcounts, the
//! cache tiers' byte accounting) expose a `check_invariants` method that
//! appends any violations to a list, and the checker treats a non-empty
//! list as a failed schedule. Ordinary tests can still assert the list is
//! empty, which is the `debug_assert` these callbacks replace.

use std::fmt;

/// One violated invariant: which one, and what the structure looked like.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantViolation {
    /// Stable invariant name (e.g. `"chunkstore.refcount-underflow"`).
    pub name: &'static str,
    /// Human-readable description of the violating state.
    pub detail: String,
}

impl InvariantViolation {
    /// Builds a violation record.
    pub fn new(name: &'static str, detail: impl Into<String>) -> Self {
        InvariantViolation {
            name,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.name, self.detail)
    }
}
