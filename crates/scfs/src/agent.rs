//! The SCFS Agent: the client-side implementation of the file system
//! (paper §2.5), combining the storage, metadata and locking services with
//! the two cache levels, the three operation modes, private name spaces and
//! the background garbage collector.

use std::collections::HashMap;
use std::sync::Arc;

use cloud_store::store::OpCtx;
use cloud_store::types::{AccountId, Acl, Permission};
use coord::lock::LockManager;
use coord::service::{CoordinationService, SessionId};
use sim_core::latency::LatencyProfile;
use sim_core::rng::DetRng;
use sim_core::time::{Clock, SimDuration, SimInstant};
use sim_core::units::Bytes;

use crate::anchor::anchored_read;
use crate::backend::FileStorage;
use crate::cache::FileCache;
use crate::config::{Mode, ScfsConfig};
use crate::error::ScfsError;
use crate::fs::FileSystem;
use crate::metadata_service::MetadataService;
use crate::types::{normalize_path, FileHandle, FileMetadata, FileType, OpenFlags};

/// Counters describing the agent's activity, used by the experiment
/// harnesses to explain latency results.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AgentStats {
    /// Number of file-system calls served.
    pub syscalls: u64,
    /// Whole-file uploads to the cloud backend (foreground + background).
    pub cloud_uploads: u64,
    /// Whole-file downloads from the cloud backend.
    pub cloud_downloads: u64,
    /// Reads served from the memory or disk cache without touching the cloud.
    pub cache_served_reads: u64,
    /// Total retries spent in the consistency-anchor read loop.
    pub anchor_retries: u64,
    /// Garbage-collection cycles executed.
    pub gc_runs: u64,
    /// File versions reclaimed by the garbage collector.
    pub gc_reclaimed_versions: u64,
}

/// State of one open file.
#[derive(Debug, Clone)]
struct OpenFile {
    path: String,
    flags: OpenFlags,
    metadata: FileMetadata,
    buffer: Vec<u8>,
    dirty: bool,
    locked: bool,
    never_uploaded: bool,
}

/// The SCFS agent: one per mounted client.
pub struct ScfsAgent {
    user: AccountId,
    config: ScfsConfig,
    clock: Clock,
    rng: DetRng,
    storage: Arc<dyn FileStorage>,
    metadata: MetadataService,
    locks: Option<LockManager>,
    mem_cache: FileCache,
    disk_cache: FileCache,
    mem_latency: LatencyProfile,
    open_files: HashMap<FileHandle, OpenFile>,
    next_handle: u64,
    next_storage_id: u64,
    /// Completion instant of the last queued background upload; background
    /// work is serialized behind this cursor (one uploader thread).
    background_cursor: SimInstant,
    written_since_gc: u64,
    /// Files this agent has written: storage id → (path, deleted?).
    owned_files: HashMap<String, (String, bool)>,
    stats: AgentStats,
}

impl std::fmt::Debug for ScfsAgent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScfsAgent")
            .field("user", &self.user)
            .field("mode", &self.config.mode)
            .field("backend", &self.storage.label())
            .finish()
    }
}

impl ScfsAgent {
    /// Mounts a new agent for `user` over the given backend and (optional)
    /// coordination service.
    ///
    /// The coordination service is required in the blocking and non-blocking
    /// modes and ignored in the non-sharing mode (paper §3.1).
    pub fn mount(
        user: AccountId,
        config: ScfsConfig,
        storage: Arc<dyn FileStorage>,
        coord: Option<Arc<dyn CoordinationService>>,
        seed: u64,
    ) -> Result<Self, ScfsError> {
        if config.mode.uses_coordination() && coord.is_none() {
            return Err(ScfsError::invalid(format!(
                "mode {:?} requires a coordination service",
                config.mode
            )));
        }
        let coord = if config.mode.uses_coordination() {
            coord
        } else {
            None
        };
        let session = SessionId::new(format!("{}-{}", user.as_str(), seed));
        let locks = coord
            .clone()
            .map(|c| LockManager::new(c, session, config.lock_lease));
        let use_pns = config.private_name_spaces || !config.mode.uses_coordination();
        let metadata = MetadataService::new(
            coord,
            use_pns,
            user.clone(),
            config.metadata_cache_expiry,
        );
        Ok(ScfsAgent {
            mem_cache: FileCache::memory(config.memory_cache_capacity, seed ^ 0x11),
            disk_cache: FileCache::disk(config.disk_cache_capacity, seed ^ 0x22),
            mem_latency: LatencyProfile::main_memory(),
            user,
            config,
            clock: Clock::new(),
            rng: DetRng::new(seed),
            storage,
            metadata,
            locks,
            open_files: HashMap::new(),
            next_handle: 1,
            next_storage_id: 1,
            background_cursor: SimInstant::EPOCH,
            written_since_gc: 0,
            owned_files: HashMap::new(),
            stats: AgentStats::default(),
        })
    }

    /// The agent's activity counters.
    pub fn stats(&self) -> AgentStats {
        self.stats
    }

    /// The agent's metadata service (exposes PNS and cache statistics).
    pub fn metadata_service(&self) -> &MetadataService {
        &self.metadata
    }

    /// The agent's configuration.
    pub fn config(&self) -> &ScfsConfig {
        &self.config
    }

    /// Overrides which path prefixes are treated as shared when PNSs are
    /// enabled (used by the Figure 10(b) sweep).
    pub fn set_shared_prefixes(&mut self, prefixes: Vec<String>) {
        self.metadata.set_shared_prefixes(prefixes);
    }

    /// Instant at which all currently queued background uploads will have
    /// completed (the durability horizon of non-blocking mode).
    pub fn background_drain_instant(&self) -> SimInstant {
        self.background_cursor
    }

    fn charge_syscall(&mut self) {
        self.stats.syscalls += 1;
        let d = self.config.syscall_overhead.sample(&mut self.rng);
        self.clock.advance(d);
    }

    fn charge_memory(&mut self, bytes: usize) {
        let d = self
            .mem_latency
            .sample_op(&mut self.rng, Bytes::new(bytes as u64), Bytes::ZERO);
        self.clock.advance(d);
    }

    fn alloc_handle(&mut self) -> FileHandle {
        let h = FileHandle(self.next_handle);
        self.next_handle += 1;
        h
    }

    fn alloc_storage_id(&mut self) -> String {
        let id = format!("{}-f{}", self.user.as_str(), self.next_storage_id);
        self.next_storage_id += 1;
        id
    }

    fn lock_id(metadata: &FileMetadata) -> String {
        metadata.storage_id.clone()
    }

    /// Uploads `data` as the new version of `metadata`'s object and commits
    /// the metadata update and unlock, all on the clock inside `ctx`
    /// (foreground clock for blocking mode, background clock otherwise).
    #[allow(clippy::too_many_arguments)]
    fn upload_and_commit(
        storage: &Arc<dyn FileStorage>,
        metadata_svc: &mut MetadataService,
        locks: &Option<LockManager>,
        ctx: &mut OpCtx<'_>,
        mut metadata: FileMetadata,
        data: &[u8],
        never_uploaded: bool,
        unlock: bool,
        stats: &mut AgentStats,
    ) -> Result<FileMetadata, ScfsError> {
        let hash = storage.write_version(ctx, &metadata.storage_id, data, never_uploaded)?;
        stats.cloud_uploads += 1;
        // Propagate the file ACL to the freshly written objects so that every
        // user the file is shared with — including its owner, when the writer
        // is a grantee — can read the new version.
        if metadata.is_shared() || metadata.owner != ctx.account {
            let mut cloud_acl = metadata.acl.clone();
            cloud_acl.grant(metadata.owner.clone(), Permission::Write);
            cloud_acl.grant(ctx.account.clone(), Permission::Write);
            storage.set_acl(ctx, &metadata.storage_id, &cloud_acl)?;
        }
        metadata.version_hash = Some(hash);
        metadata.size = data.len() as u64;
        metadata.modified_at = ctx.clock.now();
        metadata.version_count += 1;
        metadata_svc.update(ctx, metadata.clone())?;
        if unlock {
            if let Some(locks) = locks {
                locks.unlock(ctx, &Self::lock_id(&metadata))?;
            }
        }
        Ok(metadata)
    }

    /// Runs the garbage collector if the written-bytes threshold was crossed
    /// (paper §2.5.3). The collector runs on a background clock so it does
    /// not add latency to foreground operations.
    fn maybe_run_gc(&mut self) {
        if !self.config.gc.enabled
            || self.written_since_gc < self.config.gc.written_bytes_threshold.get()
        {
            return;
        }
        self.written_since_gc = 0;
        self.stats.gc_runs += 1;
        let mut bg_clock = Clock::starting_at(self.clock.now().max(self.background_cursor));
        let mut ctx = OpCtx::new(&mut bg_clock, self.user.clone());
        let keep = self.config.gc.versions_to_keep;
        let mut reclaimed = 0u64;
        let mut fully_deleted: Vec<String> = Vec::new();
        for (storage_id, (path, deleted)) in &self.owned_files {
            if *deleted {
                if self.storage.delete_all(&mut ctx, storage_id).is_ok() {
                    let _ = self.metadata.delete(&mut ctx, path);
                    fully_deleted.push(storage_id.clone());
                }
            } else if let Ok(n) = self.storage.delete_old_versions(&mut ctx, storage_id, keep) {
                reclaimed += n as u64;
            }
        }
        for id in fully_deleted {
            self.owned_files.remove(&id);
        }
        self.stats.gc_reclaimed_versions += reclaimed;
        self.background_cursor = self.background_cursor.max(bg_clock.now());
    }

    fn get_open(&self, handle: FileHandle) -> Result<&OpenFile, ScfsError> {
        self.open_files
            .get(&handle)
            .ok_or(ScfsError::BadHandle { handle: handle.0 })
    }

    fn get_open_mut(&mut self, handle: FileHandle) -> Result<&mut OpenFile, ScfsError> {
        self.open_files
            .get_mut(&handle)
            .ok_or(ScfsError::BadHandle { handle: handle.0 })
    }
}

impl FileSystem for ScfsAgent {
    fn name(&self) -> String {
        format!("SCFS-{}-{}", self.storage.label(), self.config.mode.label())
    }

    fn clock(&self) -> &Clock {
        &self.clock
    }

    fn sleep(&mut self, duration: SimDuration) {
        self.clock.advance(duration);
    }

    fn open(&mut self, path: &str, flags: OpenFlags) -> Result<FileHandle, ScfsError> {
        self.charge_syscall();
        let path = normalize_path(path)?;

        // Step 1: read the file metadata (or create it).
        let mut ctx = OpCtx::new(&mut self.clock, self.user.clone());
        let existing = match self.metadata.get(&mut ctx, &path) {
            Ok(md) if !md.deleted => Some(md),
            _ => None,
        };
        let (mut metadata, never_uploaded) = match existing {
            Some(md) => {
                if md.file_type != FileType::File {
                    return Err(ScfsError::WrongType {
                        path,
                        expected: "file",
                    });
                }
                let never = md.version_hash.is_none();
                (md, never)
            }
            None => {
                if !flags.create {
                    return Err(ScfsError::not_found(path));
                }
                let storage_id = {
                    // `alloc_storage_id` needs `&mut self`; end the ctx borrow first.
                    drop(ctx);
                    self.alloc_storage_id()
                };
                let now = self.clock.now();
                let md = FileMetadata::new_file(&path, self.user.clone(), storage_id, now);
                let mut ctx2 = OpCtx::new(&mut self.clock, self.user.clone());
                self.metadata.create(&mut ctx2, md.clone())?;
                self.owned_files
                    .insert(md.storage_id.clone(), (path.clone(), false));
                (md, true)
            }
        };

        // Step 2: acquire the write lock for shared files opened for writing.
        let mut locked = false;
        if flags.write
            && self.config.mode.uses_coordination()
            && !self.metadata.is_private(&path, Some(&metadata))
        {
            if let Some(locks) = &self.locks {
                let mut ctx = OpCtx::new(&mut self.clock, self.user.clone());
                locks.try_lock(&mut ctx, &Self::lock_id(&metadata))?;
                locked = true;
            }
        }

        // Step 3: bring the file data into the local caches.
        let buffer = if flags.truncate || metadata.version_hash.is_none() {
            Vec::new()
        } else {
            let expected = metadata.version_hash;
            let from_mem = self
                .mem_cache
                .get(&mut self.clock, &path, expected.as_ref());
            match from_mem {
                Some(data) => {
                    self.stats.cache_served_reads += 1;
                    data
                }
                None => {
                    let from_disk = self
                        .disk_cache
                        .get(&mut self.clock, &path, expected.as_ref());
                    match from_disk {
                        Some(data) => {
                            self.stats.cache_served_reads += 1;
                            self.mem_cache
                                .put(&mut self.clock, &path, data.clone(), expected);
                            data
                        }
                        None => {
                            // Not cached (or stale): fetch from the cloud via
                            // the consistency-anchor read.
                            let hash = expected.expect("checked above");
                            let mut ctx = OpCtx::new(&mut self.clock, self.user.clone());
                            let result = anchored_read(
                                &mut ctx,
                                self.storage.as_ref(),
                                &metadata.storage_id,
                                &hash,
                                self.config.anchor_read_retries,
                                self.config.anchor_retry_backoff,
                            )?;
                            self.stats.cloud_downloads += 1;
                            self.stats.anchor_retries += result.retries as u64;
                            self.disk_cache.put(
                                &mut self.clock,
                                &path,
                                result.data.clone(),
                                Some(hash),
                            );
                            self.mem_cache.put(
                                &mut self.clock,
                                &path,
                                result.data.clone(),
                                Some(hash),
                            );
                            result.data
                        }
                    }
                }
            }
        };

        if flags.truncate {
            metadata.size = 0;
        }

        let handle = self.alloc_handle();
        let dirty = flags.truncate && metadata.version_hash.is_some();
        self.open_files.insert(
            handle,
            OpenFile {
                path,
                flags,
                metadata,
                buffer,
                dirty,
                locked,
                never_uploaded,
            },
        );
        Ok(handle)
    }

    fn read(&mut self, handle: FileHandle, offset: u64, len: usize) -> Result<Vec<u8>, ScfsError> {
        self.charge_syscall();
        let file = self.get_open(handle)?;
        if !file.flags.read {
            return Err(ScfsError::PermissionDenied {
                path: file.path.clone(),
            });
        }
        let start = (offset as usize).min(file.buffer.len());
        let end = (start + len).min(file.buffer.len());
        let data = file.buffer[start..end].to_vec();
        self.charge_memory(data.len());
        Ok(data)
    }

    fn write(&mut self, handle: FileHandle, offset: u64, data: &[u8]) -> Result<usize, ScfsError> {
        self.charge_syscall();
        let file = self.get_open_mut(handle)?;
        if !file.flags.write {
            return Err(ScfsError::PermissionDenied {
                path: file.path.clone(),
            });
        }
        let end = offset as usize + data.len();
        if file.buffer.len() < end {
            file.buffer.resize(end, 0);
        }
        file.buffer[offset as usize..end].copy_from_slice(data);
        file.dirty = true;
        file.metadata.size = file.buffer.len() as u64;
        let len = data.len();
        self.charge_memory(len);
        Ok(len)
    }

    fn truncate(&mut self, handle: FileHandle, size: u64) -> Result<(), ScfsError> {
        self.charge_syscall();
        let file = self.get_open_mut(handle)?;
        if !file.flags.write {
            return Err(ScfsError::PermissionDenied {
                path: file.path.clone(),
            });
        }
        file.buffer.resize(size as usize, 0);
        file.dirty = true;
        file.metadata.size = size;
        Ok(())
    }

    fn fsync(&mut self, handle: FileHandle) -> Result<(), ScfsError> {
        self.charge_syscall();
        let file = self.get_open(handle)?;
        if !file.dirty {
            return Ok(());
        }
        let (path, buffer) = (file.path.clone(), file.buffer.clone());
        // Durability level 1: the data reaches the local disk.
        self.disk_cache.put(&mut self.clock, &path, buffer, None);
        Ok(())
    }

    fn close(&mut self, handle: FileHandle) -> Result<(), ScfsError> {
        self.charge_syscall();
        let file = self
            .open_files
            .remove(&handle)
            .ok_or(ScfsError::BadHandle { handle: handle.0 })?;

        if !file.dirty {
            // Nothing to synchronize; just release the lock if we held it.
            if file.locked {
                if let Some(locks) = &self.locks {
                    let mut ctx = OpCtx::new(&mut self.clock, self.user.clone());
                    locks.unlock(&mut ctx, &Self::lock_id(&file.metadata))?;
                }
            }
            return Ok(());
        }

        let OpenFile {
            path,
            metadata,
            buffer,
            locked,
            never_uploaded,
            ..
        } = file;

        // The data always reaches the local disk first (level 1), and the
        // content hash is known immediately.
        let new_hash = scfs_crypto::sha256(&buffer);
        self.disk_cache
            .put(&mut self.clock, &path, buffer.clone(), Some(new_hash));
        self.mem_cache
            .put(&mut self.clock, &path, buffer.clone(), Some(new_hash));
        self.written_since_gc += buffer.len() as u64;

        match self.config.mode {
            Mode::Blocking => {
                // Consistency-anchor write, fully synchronous: data to the
                // cloud(s), then metadata to the coordination service, then
                // unlock (Figure 4, close path).
                let mut ctx = OpCtx::new(&mut self.clock, self.user.clone());
                Self::upload_and_commit(
                    &self.storage,
                    &mut self.metadata,
                    &self.locks,
                    &mut ctx,
                    metadata,
                    &buffer,
                    never_uploaded,
                    locked,
                    &mut self.stats,
                )?;
            }
            Mode::NonBlocking | Mode::NonSharing => {
                // The close returns now; the upload, metadata update and
                // unlock happen on the background timeline. This client's own
                // view is updated immediately through the local caches.
                let mut updated = metadata.clone();
                updated.version_hash = Some(new_hash);
                updated.size = buffer.len() as u64;
                updated.modified_at = self.clock.now();
                updated.version_count += 1;
                let now = self.clock.now();
                self.metadata.update_local(updated, now);

                let bg_start = self.clock.now().max(self.background_cursor);
                let mut bg_clock = Clock::starting_at(bg_start);
                let mut bg_ctx = OpCtx::new(&mut bg_clock, self.user.clone());
                Self::upload_and_commit(
                    &self.storage,
                    &mut self.metadata,
                    &self.locks,
                    &mut bg_ctx,
                    metadata,
                    &buffer,
                    never_uploaded,
                    locked,
                    &mut self.stats,
                )?;
                self.background_cursor = bg_clock.now();
            }
        }

        self.maybe_run_gc();
        Ok(())
    }

    fn stat(&mut self, path: &str) -> Result<FileMetadata, ScfsError> {
        self.charge_syscall();
        let path = normalize_path(path)?;
        // An open, dirty file is described by its in-memory state.
        if let Some(open) = self.open_files.values().find(|f| f.path == path && f.dirty) {
            let mut md = open.metadata.clone();
            md.size = open.buffer.len() as u64;
            return Ok(md);
        }
        let mut ctx = OpCtx::new(&mut self.clock, self.user.clone());
        let md = self.metadata.get(&mut ctx, &path)?;
        if md.deleted {
            return Err(ScfsError::not_found(path));
        }
        Ok(md)
    }

    fn mkdir(&mut self, path: &str) -> Result<(), ScfsError> {
        self.charge_syscall();
        let path = normalize_path(path)?;
        let now = self.clock.now();
        let md = FileMetadata::new_directory(&path, self.user.clone(), now);
        let mut ctx = OpCtx::new(&mut self.clock, self.user.clone());
        if !self.metadata.parent_exists(&mut ctx, &path) {
            return Err(ScfsError::not_found(crate::types::parent_of(&path)));
        }
        self.metadata.create(&mut ctx, md)
    }

    fn readdir(&mut self, path: &str) -> Result<Vec<String>, ScfsError> {
        self.charge_syscall();
        let path = normalize_path(path)?;
        let mut ctx = OpCtx::new(&mut self.clock, self.user.clone());
        self.metadata.list_children(&mut ctx, &path)
    }

    fn unlink(&mut self, path: &str) -> Result<(), ScfsError> {
        self.charge_syscall();
        let path = normalize_path(path)?;
        let mut ctx = OpCtx::new(&mut self.clock, self.user.clone());
        let mut md = self.metadata.get(&mut ctx, &path)?;
        if md.deleted {
            return Err(ScfsError::not_found(path));
        }
        if md.file_type == FileType::Directory {
            return Err(ScfsError::WrongType {
                path,
                expected: "file",
            });
        }
        // Files are only marked as deleted; the garbage collector reclaims
        // the cloud objects later (paper §2.5.3).
        md.deleted = true;
        self.metadata.update(&mut ctx, md.clone())?;
        if let Some(entry) = self.owned_files.get_mut(&md.storage_id) {
            entry.1 = true;
        }
        self.mem_cache.remove(&path);
        self.disk_cache.remove(&path);
        Ok(())
    }

    fn rename(&mut self, from: &str, to: &str) -> Result<(), ScfsError> {
        self.charge_syscall();
        let from = normalize_path(from)?;
        let to = normalize_path(to)?;
        let mut ctx = OpCtx::new(&mut self.clock, self.user.clone());
        self.metadata.rename(&mut ctx, &from, &to)?;
        self.mem_cache.remove(&from);
        self.disk_cache.remove(&from);
        Ok(())
    }

    fn setfacl(
        &mut self,
        path: &str,
        user: &AccountId,
        permission: Permission,
    ) -> Result<(), ScfsError> {
        self.charge_syscall();
        let path = normalize_path(path)?;
        // Permission changes are applied after any pending background upload
        // of this agent has committed, so the grant cannot be overwritten by
        // an in-flight metadata update from an earlier non-blocking close.
        let drain = self.background_cursor;
        self.clock.advance_to(drain);
        let mut ctx = OpCtx::new(&mut self.clock, self.user.clone());
        let metadata = self.metadata.get(&mut ctx, &path)?;
        if metadata.owner != self.user {
            return Err(ScfsError::PermissionDenied { path });
        }
        let mut acl = metadata.acl.clone();
        acl.grant(user.clone(), permission);
        // (i) update the ACLs of the cloud objects holding the file data;
        // (ii) update the metadata tuple (and its coordination-service ACL).
        if metadata.file_type == FileType::File && metadata.version_hash.is_some() {
            self.storage.set_acl(&mut ctx, &metadata.storage_id, &acl)?;
        }
        self.metadata.set_acl(&mut ctx, metadata, acl)?;
        Ok(())
    }

    fn getfacl(&mut self, path: &str) -> Result<Acl, ScfsError> {
        self.charge_syscall();
        let path = normalize_path(path)?;
        let mut ctx = OpCtx::new(&mut self.clock, self.user.clone());
        Ok(self.metadata.get(&mut ctx, &path)?.acl)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::SingleCloudStorage;
    use cloud_store::sim_cloud::SimulatedCloud;
    use coord::replication::ReplicatedCoordinator;

    fn test_agent(mode: Mode) -> ScfsAgent {
        let cloud = Arc::new(SimulatedCloud::test("s3"));
        let storage = Arc::new(SingleCloudStorage::new(cloud));
        let coord: Arc<dyn CoordinationService> = Arc::new(ReplicatedCoordinator::test());
        ScfsAgent::mount(
            "alice".into(),
            ScfsConfig::test(mode),
            storage,
            Some(coord),
            7,
        )
        .unwrap()
    }

    #[test]
    fn create_write_read_round_trip() {
        let mut fs = test_agent(Mode::Blocking);
        fs.write_file("/docs/report.txt", b"hello SCFS").unwrap();
        assert_eq!(fs.read_file("/docs/report.txt").unwrap(), b"hello SCFS");
        let md = fs.stat("/docs/report.txt").unwrap();
        assert_eq!(md.size, 10);
        assert_eq!(md.version_count, 1);
        assert!(md.version_hash.is_some());
    }

    #[test]
    fn open_missing_file_without_create_fails() {
        let mut fs = test_agent(Mode::Blocking);
        assert!(matches!(
            fs.open("/nope", OpenFlags::read_only()),
            Err(ScfsError::NotFound { .. })
        ));
    }

    #[test]
    fn reads_and_writes_use_offsets() {
        let mut fs = test_agent(Mode::Blocking);
        let h = fs.open("/f", OpenFlags::create()).unwrap();
        fs.write(h, 0, b"0123456789").unwrap();
        fs.write(h, 4, b"XY").unwrap();
        assert_eq!(fs.read(h, 3, 4).unwrap(), b"3XY6");
        fs.truncate(h, 5).unwrap();
        assert_eq!(fs.read(h, 0, 100).unwrap(), b"0123X");
        fs.close(h).unwrap();
        assert_eq!(fs.stat("/f").unwrap().size, 5);
    }

    #[test]
    fn consistency_on_close_second_client_sees_update() {
        // Two agents for two users sharing one cloud + coordination service.
        let cloud = Arc::new(SimulatedCloud::test("s3"));
        let storage = Arc::new(SingleCloudStorage::new(cloud));
        let coord: Arc<dyn CoordinationService> = Arc::new(ReplicatedCoordinator::test());
        let mut alice = ScfsAgent::mount(
            "alice".into(),
            ScfsConfig::test(Mode::Blocking),
            storage.clone(),
            Some(coord.clone()),
            1,
        )
        .unwrap();
        let mut bob = ScfsAgent::mount(
            "bob".into(),
            ScfsConfig::test(Mode::Blocking),
            storage,
            Some(coord),
            2,
        )
        .unwrap();

        alice.write_file("/shared/doc", b"v1 from alice").unwrap();
        alice
            .setfacl("/shared/doc", &"bob".into(), Permission::Write)
            .unwrap();
        // Bob opens after Alice's close: he must observe the latest version.
        bob.sleep(SimDuration::from_secs(1));
        assert_eq!(bob.read_file("/shared/doc").unwrap(), b"v1 from alice");
    }

    #[test]
    fn write_write_conflicts_are_prevented_by_locks() {
        let cloud = Arc::new(SimulatedCloud::test("s3"));
        let storage = Arc::new(SingleCloudStorage::new(cloud));
        let coord: Arc<dyn CoordinationService> = Arc::new(ReplicatedCoordinator::test());
        let mut alice = ScfsAgent::mount(
            "alice".into(),
            ScfsConfig::test(Mode::Blocking),
            storage.clone(),
            Some(coord.clone()),
            1,
        )
        .unwrap();
        let mut bob = ScfsAgent::mount(
            "bob".into(),
            ScfsConfig::test(Mode::Blocking),
            storage,
            Some(coord),
            2,
        )
        .unwrap();

        alice.write_file("/shared/doc", b"v1").unwrap();
        alice
            .setfacl("/shared/doc", &"bob".into(), Permission::Write)
            .unwrap();
        let h = alice.open("/shared/doc", OpenFlags::read_write()).unwrap();
        // Bob cannot open the same file for writing while Alice holds it.
        bob.sleep(SimDuration::from_secs(1));
        assert!(matches!(
            bob.open("/shared/doc", OpenFlags::read_write()),
            Err(ScfsError::Locked { .. })
        ));
        // Reading does not require the lock.
        assert_eq!(bob.read_file("/shared/doc").unwrap(), b"v1");
        alice.close(h).unwrap();
        bob.sleep(SimDuration::from_secs(1));
        let h2 = bob.open("/shared/doc", OpenFlags::read_write()).unwrap();
        bob.close(h2).unwrap();
    }

    #[test]
    fn non_blocking_close_is_fast_but_eventually_durable() {
        let mut fs = test_agent(Mode::NonBlocking);
        let start = fs.now();
        fs.write_file("/f", &vec![1u8; 100_000]).unwrap();
        let foreground = fs.now().duration_since(start);
        // The upload still happened (on the background timeline).
        assert_eq!(fs.stats().cloud_uploads, 1);
        assert!(fs.background_drain_instant() >= fs.now());
        // And the file remains readable by this client.
        assert_eq!(fs.read_file("/f").unwrap().len(), 100_000);
        // Foreground latency must not include a cloud round trip: with the
        // instantaneous test cloud this is just local work.
        assert!(foreground < SimDuration::from_secs(1));
    }

    #[test]
    fn non_sharing_mode_needs_no_coordination_service() {
        let cloud = Arc::new(SimulatedCloud::test("s3"));
        let storage = Arc::new(SingleCloudStorage::new(cloud));
        let mut fs = ScfsAgent::mount(
            "alice".into(),
            ScfsConfig::test(Mode::NonSharing),
            storage,
            None,
            3,
        )
        .unwrap();
        fs.write_file("/private/notes", b"only mine").unwrap();
        assert_eq!(fs.read_file("/private/notes").unwrap(), b"only mine");
        assert_eq!(fs.name(), "SCFS-AWS-NS");
    }

    #[test]
    fn blocking_mode_requires_coordination_service() {
        let cloud = Arc::new(SimulatedCloud::test("s3"));
        let storage = Arc::new(SingleCloudStorage::new(cloud));
        assert!(ScfsAgent::mount(
            "alice".into(),
            ScfsConfig::test(Mode::Blocking),
            storage,
            None,
            3,
        )
        .is_err());
    }

    #[test]
    fn directories_mkdir_readdir_unlink() {
        let mut fs = test_agent(Mode::Blocking);
        fs.mkdir("/projects").unwrap();
        fs.write_file("/projects/a.txt", b"a").unwrap();
        fs.write_file("/projects/b.txt", b"b").unwrap();
        let listing = fs.readdir("/projects").unwrap();
        assert_eq!(listing.len(), 2);
        fs.unlink("/projects/a.txt").unwrap();
        assert!(matches!(
            fs.stat("/projects/a.txt"),
            Err(ScfsError::NotFound { .. })
        ));
        assert_eq!(fs.readdir("/projects").unwrap().len(), 2, "tombstone remains until GC");
        // mkdir under a missing parent fails.
        assert!(fs.mkdir("/does/not/exist").is_err());
    }

    #[test]
    fn rename_moves_files() {
        let mut fs = test_agent(Mode::Blocking);
        fs.write_file("/old-name", b"data").unwrap();
        fs.rename("/old-name", "/new-name").unwrap();
        assert_eq!(fs.read_file("/new-name").unwrap(), b"data");
        assert!(fs.stat("/old-name").is_err());
    }

    #[test]
    fn stat_of_open_dirty_file_reflects_buffer() {
        let mut fs = test_agent(Mode::Blocking);
        let h = fs.open("/f", OpenFlags::create()).unwrap();
        fs.write(h, 0, &vec![0u8; 4096]).unwrap();
        assert_eq!(fs.stat("/f").unwrap().size, 4096);
        fs.close(h).unwrap();
    }

    #[test]
    fn getfacl_and_setfacl() {
        let mut fs = test_agent(Mode::Blocking);
        fs.write_file("/doc", b"x").unwrap();
        assert!(fs.getfacl("/doc").unwrap().is_empty());
        fs.setfacl("/doc", &"bob".into(), Permission::Read).unwrap();
        assert!(fs.getfacl("/doc").unwrap().allows(&"bob".into(), Permission::Read));
    }

    #[test]
    fn garbage_collector_reclaims_old_versions() {
        let cloud = Arc::new(SimulatedCloud::test("s3"));
        let storage = Arc::new(SingleCloudStorage::new(cloud.clone()));
        let coord: Arc<dyn CoordinationService> = Arc::new(ReplicatedCoordinator::test());
        let mut config = ScfsConfig::test(Mode::Blocking);
        config.gc.written_bytes_threshold = Bytes::new(50_000);
        config.gc.versions_to_keep = 2;
        let mut fs =
            ScfsAgent::mount("alice".into(), config, storage, Some(coord), 5).unwrap();
        for _ in 0..10 {
            fs.write_file("/big", &vec![7u8; 10_000]).unwrap();
        }
        assert!(fs.stats().gc_runs >= 1);
        assert!(fs.stats().gc_reclaimed_versions > 0);
        // The latest version is still readable.
        assert_eq!(fs.read_file("/big").unwrap().len(), 10_000);
    }

    #[test]
    fn cache_serves_repeated_reads_without_cloud_access() {
        let mut fs = test_agent(Mode::Blocking);
        fs.write_file("/f", &vec![1u8; 10_000]).unwrap();
        let downloads_before = fs.stats().cloud_downloads;
        for _ in 0..5 {
            fs.read_file("/f").unwrap();
        }
        assert_eq!(
            fs.stats().cloud_downloads,
            downloads_before,
            "reads of an unmodified file must be served locally (avoid reading principle)"
        );
        assert!(fs.stats().cache_served_reads >= 5);
    }

    #[test]
    fn bad_handles_are_rejected() {
        let mut fs = test_agent(Mode::Blocking);
        assert!(matches!(
            fs.read(FileHandle(99), 0, 1),
            Err(ScfsError::BadHandle { .. })
        ));
        assert!(matches!(
            fs.close(FileHandle(99)),
            Err(ScfsError::BadHandle { .. })
        ));
    }
}
