//! The SCFS Agent: the client-side implementation of the file system
//! (paper §2.5), combining the storage, metadata and locking services with
//! the two cache levels, the three operation modes, private name spaces and
//! the background garbage collector.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use cloud_store::store::OpCtx;
use cloud_store::types::{AccountId, Acl, Permission};
use coord::lock::LockManager;
use coord::service::{CoordinationService, SessionId};
use sim_core::background::{BackgroundScheduler, Pending};
use sim_core::latency::LatencyProfile;
use sim_core::rng::DetRng;
use sim_core::schedule::ControllerSlot;
use sim_core::time::{Clock, SimDuration, SimInstant};
use sim_core::units::Bytes;

use crate::anchor::{anchored_chunk, anchored_manifest};
use crate::backend::FileStorage;
use crate::cache::{TieredCache, TieredStats, WriteMode};
use crate::config::{Mode, ScfsConfig};
use crate::durability::DurabilityLevel;
use crate::error::ScfsError;
use crate::fs::FileSystem;
use crate::invariant::InvariantViolation;
use crate::metadata_service::MetadataService;
use crate::transfer::{execute_plan, TransferOptions, TransferPlan};
use crate::types::{normalize_path, ChunkMap, FileHandle, FileMetadata, FileType, OpenFlags};

/// Chunk payloads in request order, plus whether the cloud was touched.
type FetchedChunks = (Vec<Arc<[u8]>>, bool);

/// Scheduler lane of the garbage collector: GC cycles serialize with one
/// another but overlap with uploads and prefetches. Distinct from every
/// object lane (storage ids always contain `-f`).
const GC_LANE: &str = "gc";

/// Counters describing the agent's activity, used by the experiment
/// harnesses to explain latency results.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AgentStats {
    /// Number of file-system calls served.
    pub syscalls: u64,
    /// Version commits to the cloud backend (foreground + background): one
    /// per close of a dirty file, regardless of how many chunks moved.
    pub cloud_uploads: u64,
    /// Version fetches that had to touch the cloud backend (at least one
    /// chunk or manifest was not cached locally).
    pub cloud_downloads: u64,
    /// Individual chunks uploaded to the cloud backend.
    pub chunk_uploads: u64,
    /// Individual chunks downloaded from the cloud backend.
    pub chunk_downloads: u64,
    /// Payload bytes handed to the cloud backend (dirty chunks + manifests).
    /// Logical bytes: the CoC backend's replication/erasure-coding overhead
    /// on the wire is accounted per cloud, not here.
    pub bytes_uploaded: u64,
    /// Payload bytes fetched from the cloud backend (missing chunks).
    pub bytes_downloaded: u64,
    /// Reads served from the memory or disk cache without touching the cloud.
    pub cache_served_reads: u64,
    /// Total retries spent in the consistency-anchor read loop.
    pub anchor_retries: u64,
    /// Garbage-collection cycles executed.
    pub gc_runs: u64,
    /// File versions reclaimed by the garbage collector.
    pub gc_reclaimed_versions: u64,
    /// Failed garbage-collection deletions (old-version prunes, full
    /// removals, tombstone metadata deletes or journaled blob deletes that
    /// errored); the collector keeps going, but the failures are surfaced
    /// here instead of being silently swallowed.
    pub gc_errors: u64,
    /// Release-journal entries re-attempted after a previous failed delete —
    /// each one is a blob the pre-journal collector would have leaked.
    pub gc_retried: u64,
    /// Blobs reclaimed on a retry pass: orphans recovered by the journal.
    pub gc_orphans_reclaimed: u64,
    /// Distinct chunks skipped at upload because another file (or user) had
    /// already stored identical content in the global chunk store.
    pub dedup_hits_cross_file: u64,
    /// Parallel waves executed by the foreground transfer engine: a close
    /// that uploads 16 chunks at parallelism 4 adds 4 waves, and its
    /// foreground clock advanced by ~4 chunk-upload latencies.
    pub transfer_waves: u64,
    /// Reads served at byte-range granularity: the handle was only partially
    /// materialized and the read touched a strict subset of the file's
    /// chunks (no whole-file materialization was needed).
    pub range_reads: u64,
    /// Chunks fetched ahead of a sequential reader on the background clock.
    pub prefetched_chunks: u64,
    /// Non-blocking closes that had to wait for an earlier pending upload to
    /// complete because `max_pending_uploads` commits were already in flight
    /// (the explicit backpressure of the bounded upload queue).
    pub backpressure_stalls: u64,
}

/// State of one open file.
///
/// `open` no longer materializes the file: it loads only the manifest and
/// allocates a sparse buffer. Chunks fault in lazily as `read(offset, len)`
/// touches them (`present` tracks which ones arrived); writes materialize
/// the whole file first, so a dirty handle is always fully backed.
#[derive(Debug, Clone)]
struct OpenFile {
    path: String,
    flags: OpenFlags,
    metadata: FileMetadata,
    buffer: Vec<u8>,
    /// Chunk map of the version the buffer was loaded from (`None` for fresh
    /// or truncated files); the previous-version hint for dirty-chunk upload.
    chunk_map: Option<ChunkMap>,
    /// Which chunks of `chunk_map` are materialized in `buffer`; `None` once
    /// the whole file is materialized (always for fresh/truncated files).
    present: Option<Vec<bool>>,
    /// In-flight sequential prefetches: chunk index → the background instant
    /// the fetch completes. The data is already in the caches, but a
    /// foreground read arriving earlier must wait for that instant.
    prefetch_ready: HashMap<usize, SimInstant>,
    /// End offset of the previous read (`None` before the first read); the
    /// sequential-pattern detector driving prefetch.
    last_read_end: Option<u64>,
    dirty: bool,
    locked: bool,
    never_uploaded: bool,
}

impl OpenFile {
    /// Indices of `indices` whose chunks are not yet in `buffer`.
    fn missing_of(&self, indices: std::ops::Range<usize>) -> Vec<usize> {
        match &self.present {
            Some(present) => indices.filter(|i| !present[*i]).collect(),
            None => Vec::new(),
        }
    }
}

/// One in-flight background version commit of this agent: the state a
/// surfaced [`Pending`] token is built from.
#[derive(Debug, Clone)]
struct PendingUpload {
    /// Path of the object at close time (pending records are retired before
    /// a rename can move the path).
    path: String,
    /// The metadata as committed by the background job — this agent's
    /// read-your-writes source for reopens and stats while the commit
    /// instant is still in the foreground's future.
    metadata: FileMetadata,
    /// Virtual instant the background job started (after lane queueing).
    started_at: SimInstant,
    /// Virtual instant the whole commit (chunks, manifest, metadata update,
    /// unlock) completes.
    ready_at: SimInstant,
}

/// The SCFS agent: one per mounted client.
pub struct ScfsAgent {
    user: AccountId,
    config: ScfsConfig,
    clock: Clock,
    rng: DetRng,
    storage: Arc<dyn FileStorage>,
    metadata: MetadataService,
    locks: Option<LockManager>,
    cache: TieredCache,
    mem_latency: LatencyProfile,
    /// Ordered: `flush_all`-style sweeps and the dirty-handle scan iterate,
    /// so the container must not leak hash order into simulated behaviour.
    open_files: BTreeMap<FileHandle, OpenFile>,
    next_handle: u64,
    next_storage_id: u64,
    /// Background jobs — uploads, prefetches, GC cycles — run as scheduler
    /// jobs on per-object lanes: work on the same object serializes, work on
    /// different objects overlaps in virtual time.
    scheduler: BackgroundScheduler,
    /// In-flight background version commits, by storage id. Bounded by
    /// `config.max_pending_uploads` (close applies backpressure); each entry
    /// is the one token `setfacl`, `sync` and reopens of that object wait
    /// on — never a global drain.
    pending_uploads: BTreeMap<String, PendingUpload>,
    written_since_gc: u64,
    /// Files this agent has written: storage id → (path, deleted?). The GC
    /// cycle iterates this, so it is ordered for run-to-run determinism.
    owned_files: BTreeMap<String, (String, bool)>,
    stats: AgentStats,
}

impl std::fmt::Debug for ScfsAgent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScfsAgent")
            .field("user", &self.user)
            .field("mode", &self.config.mode)
            .field("backend", &self.storage.label())
            .finish()
    }
}

impl ScfsAgent {
    /// Mounts a new agent for `user` over the given backend and (optional)
    /// coordination service.
    ///
    /// The coordination service is required in the blocking and non-blocking
    /// modes and ignored in the non-sharing mode (paper §3.1).
    pub fn mount(
        user: AccountId,
        config: ScfsConfig,
        storage: Arc<dyn FileStorage>,
        coord: Option<Arc<dyn CoordinationService>>,
        seed: u64,
    ) -> Result<Self, ScfsError> {
        if config.mode.uses_coordination() && coord.is_none() {
            return Err(ScfsError::invalid(format!(
                "mode {:?} requires a coordination service",
                config.mode
            )));
        }
        let coord = if config.mode.uses_coordination() {
            coord
        } else {
            None
        };
        let session = SessionId::new(format!("{}-{}", user.as_str(), seed));
        let locks = coord
            .clone()
            .map(|c| LockManager::new(c, session, config.lock_lease));
        let use_pns = config.private_name_spaces || !config.mode.uses_coordination();
        let metadata =
            MetadataService::new(coord, use_pns, user.clone(), config.metadata_cache_expiry);
        Ok(ScfsAgent {
            cache: TieredCache::new(&config.cache, seed),
            mem_latency: LatencyProfile::main_memory(),
            user,
            config,
            // scfs-lint: allow(C003, mount is the agent's clock root; every session starts at the virtual epoch by design)
            clock: Clock::new(),
            rng: DetRng::new(seed),
            storage,
            metadata,
            locks,
            open_files: BTreeMap::new(),
            next_handle: 1,
            next_storage_id: 1,
            scheduler: BackgroundScheduler::new(),
            pending_uploads: BTreeMap::new(),
            written_since_gc: 0,
            owned_files: BTreeMap::new(),
            stats: AgentStats::default(),
        })
    }

    /// The agent's activity counters.
    pub fn stats(&self) -> AgentStats {
        self.stats
    }

    /// The two-level cache's counters: per-tier hits/misses/evictions,
    /// promotions and demotions.
    pub fn cache_stats(&self) -> TieredStats {
        self.cache.stats()
    }

    /// The agent's metadata service (exposes PNS and cache statistics).
    pub fn metadata_service(&self) -> &MetadataService {
        &self.metadata
    }

    /// The agent's configuration.
    pub fn config(&self) -> &ScfsConfig {
        &self.config
    }

    /// Overrides which path prefixes are treated as shared when PNSs are
    /// enabled (used by the Figure 10(b) sweep).
    pub fn set_shared_prefixes(&mut self, prefixes: Vec<String>) {
        self.metadata.set_shared_prefixes(prefixes);
    }

    /// Instant at which every background job spawned so far (uploads,
    /// prefetches, GC) has completed — the coarse durability horizon of
    /// non-blocking mode. Prefer [`ScfsAgent::upload_token`] to wait for one
    /// object precisely.
    pub fn background_drain_instant(&self) -> SimInstant {
        self.scheduler.drain_instant()
    }

    /// Completion token of the in-flight background upload of `path`, if
    /// any: the durability promotion this object is still waiting for. The
    /// token's value is the level (Table 1) the data reaches at
    /// [`Pending::ready_at`] — a second mount of the same account waits on
    /// it ([`ScfsAgent::wait_for`]) instead of sleeping past a drain
    /// estimate.
    pub fn upload_token(&self, path: &str) -> Option<Pending<DurabilityLevel>> {
        let path = normalize_path(path).ok()?;
        let pending = self.pending_by_path(&path)?;
        Some(Pending::new(
            self.storage.cloud_durability(),
            pending.started_at,
            pending.ready_at,
        ))
    }

    /// Blocks this client until `token` completes (advances its clock to the
    /// token's ready instant; free if already past it).
    pub fn wait_for<T>(&mut self, token: &Pending<T>) {
        self.clock.advance_to(token.ready_at());
    }

    /// Installs one schedule controller into every nondeterminism point this
    /// agent drives: its background scheduler's lane dispatch and its
    /// storage backend's GC journal replay. Only the model checker
    /// (`scfs-check`) calls this; production agents keep the empty slot and
    /// the deterministic schedule.
    pub fn install_schedule_controller(&mut self, slot: ControllerSlot) {
        self.scheduler.install_schedule_controller(slot.clone());
        self.storage.install_schedule_controller(slot);
    }

    /// Appends any violated agent-side structural invariants to `out`: the
    /// cache tiers' byte accounting and the storage backend's chunkstore
    /// refcount/journal invariants. The model checker runs this after every
    /// step of a schedule; tests can assert the list stays empty.
    pub fn check_invariants(&self, out: &mut Vec<InvariantViolation>) {
        self.cache.check_invariants(out);
        self.storage.check_invariants(out);
    }

    /// Number of background jobs (uploads, prefetch, GC) still in flight at
    /// this agent's current instant. Zero once the agent has slept past
    /// [`ScfsAgent::background_drain_instant`] — the "every `Pending`
    /// settled at drain" quiescence check.
    pub fn background_in_flight(&self) -> usize {
        self.scheduler.in_flight(self.clock.now())
    }

    /// Drops the records of background uploads that have completed by now.
    fn reap_completed_uploads(&mut self) {
        let now = self.clock.now();
        self.pending_uploads.retain(|_, p| p.ready_at > now);
    }

    /// The in-flight upload of `path`, if any.
    fn pending_by_path(&self, path: &str) -> Option<&PendingUpload> {
        let now = self.clock.now();
        self.pending_uploads
            .values()
            .find(|p| p.path == path && p.ready_at > now)
    }

    /// This agent's freshest view of `path`: `md`, unless an in-flight
    /// background commit of the object carries a newer version — the
    /// read-your-writes rule that bridges the metadata cache's expiry while
    /// the commit instant is still in the foreground's future.
    fn with_pending_commit(&self, path: &str, md: FileMetadata) -> FileMetadata {
        match self.pending_by_path(path) {
            Some(pending) if pending.metadata.version_count > md.version_count => {
                pending.metadata.clone()
            }
            _ => md,
        }
    }

    /// Waits for the in-flight upload of one object (by storage id), if any
    /// — the per-object wait that replaced the global background cursor.
    fn wait_pending_upload(&mut self, storage_id: &str) {
        if let Some(pending) = self.pending_uploads.remove(storage_id) {
            self.clock.advance_to(pending.ready_at);
        }
    }

    /// Waits for the in-flight upload of one object (by path), if any.
    fn wait_pending_upload_of_path(&mut self, path: &str) {
        let id = self
            .pending_uploads
            .iter()
            .find(|(_, p)| p.path == path)
            .map(|(id, _)| id.clone());
        if let Some(id) = id {
            self.wait_pending_upload(&id);
        }
    }

    /// Waits for every in-flight upload of `path` or anything under it,
    /// plus (for `rename`) the destination tree — rename moves whole
    /// prefixes and may clobber the destination, and a pending record left
    /// behind would resolve reads of the old path to the moved object.
    fn wait_pending_uploads_under(&mut self, from: &str, to: &str) {
        let from_dir = format!("{from}/");
        let to_dir = format!("{to}/");
        let ids: Vec<String> = self
            .pending_uploads
            .iter()
            .filter(|(_, p)| {
                p.path == from
                    || p.path == to
                    || p.path.starts_with(&from_dir)
                    || p.path.starts_with(&to_dir)
            })
            .map(|(id, _)| id.clone())
            .collect();
        for id in ids {
            self.wait_pending_upload(&id);
        }
    }

    /// Close backpressure: blocks until fewer than `max_pending_uploads`
    /// background commits are in flight, waiting on the earliest completion
    /// token — the bounded, explicit form of the old unbounded implicit
    /// upload queue.
    fn apply_close_backpressure(&mut self) {
        self.reap_completed_uploads();
        let max = self.config.max_pending_uploads.max(1);
        while self.pending_uploads.len() >= max {
            let Some(earliest) = self.pending_uploads.values().map(|p| p.ready_at).min() else {
                break;
            };
            self.stats.backpressure_stalls += 1;
            self.clock.advance_to(earliest);
            self.reap_completed_uploads();
        }
    }

    fn charge_syscall(&mut self) {
        self.stats.syscalls += 1;
        let d = self.config.syscall_overhead.sample(&mut self.rng);
        self.clock.advance(d);
    }

    fn charge_memory(&mut self, bytes: usize) {
        let d = self
            .mem_latency
            .sample_op(&mut self.rng, Bytes::new(bytes as u64), Bytes::ZERO);
        self.clock.advance(d);
    }

    fn alloc_handle(&mut self) -> FileHandle {
        let h = FileHandle(self.next_handle);
        self.next_handle += 1;
        h
    }

    fn alloc_storage_id(&mut self) -> String {
        let id = format!("{}-f{}", self.user.as_str(), self.next_storage_id);
        self.next_storage_id += 1;
        id
    }

    fn lock_id(metadata: &FileMetadata) -> String {
        metadata.storage_id.clone()
    }

    /// Cache key of a content-addressed chunk. Chunk entries are keyed by
    /// content hash, so they are shared across versions and even files, and
    /// can never be stale.
    fn chunk_cache_key(hash: &scfs_crypto::ContentHash) -> String {
        format!("chunk:{}", scfs_crypto::to_hex(hash))
    }

    /// Cache key of an encoded chunk-map manifest, keyed by root hash.
    fn manifest_cache_key(hash: &scfs_crypto::ContentHash) -> String {
        format!("manifest:{}", scfs_crypto::to_hex(hash))
    }

    /// The engine options every transfer of this agent runs under.
    fn transfer_options(&self) -> TransferOptions {
        TransferOptions::parallel(self.config.max_parallel_transfers)
    }

    /// Uploads the dirty chunks of `data` as the new version of `metadata`'s
    /// object (through the transfer engine, `opts.max_parallel` chunks at a
    /// time) and commits the metadata update and unlock, all on the clock
    /// inside `ctx` (foreground clock for blocking mode, background clock
    /// otherwise).
    #[allow(clippy::too_many_arguments)]
    fn upload_and_commit(
        storage: &Arc<dyn FileStorage>,
        metadata_svc: &mut MetadataService,
        locks: &Option<LockManager>,
        ctx: &mut OpCtx<'_>,
        mut metadata: FileMetadata,
        data: &[u8],
        map: &ChunkMap,
        prev: Option<&ChunkMap>,
        never_uploaded: bool,
        unlock: bool,
        opts: &TransferOptions,
        stats: &mut AgentStats,
    ) -> Result<FileMetadata, ScfsError> {
        // The freshly written objects must carry the file ACL so that every
        // user the file is shared with — including its owner, when the writer
        // is a grantee — can read the new version. The backend tags exactly
        // the objects this write stores (O(dirty chunks), not O(all
        // versions × chunks)).
        let cloud_acl = if metadata.is_shared() || metadata.owner != ctx.account {
            let mut acl = metadata.acl.clone();
            acl.grant(metadata.owner.clone(), Permission::Write);
            acl.grant(ctx.account.clone(), Permission::Write);
            Some(acl)
        } else {
            None
        };
        // The blocking write is the async twin awaited immediately: begin on
        // a throwaway scheduler (this call already runs on whichever clock —
        // foreground or lane fork — owns the commit) and wait the token.
        let mut sched = BackgroundScheduler::new();
        let outcome = storage
            .begin_write_version(
                &mut sched,
                ctx.clock.now(),
                ctx.account.clone(),
                &metadata.storage_id,
                data,
                map,
                prev,
                never_uploaded,
                cloud_acl.as_ref(),
                opts,
            )
            .wait(ctx.clock)?;
        let hash = outcome.root_hash;
        stats.cloud_uploads += 1;
        stats.chunk_uploads += outcome.chunks_uploaded;
        stats.bytes_uploaded += outcome.bytes_uploaded;
        stats.transfer_waves += outcome.waves;
        stats.dedup_hits_cross_file += outcome.dedup_cross_file;
        metadata.version_hash = Some(hash);
        metadata.size = data.len() as u64;
        metadata.modified_at = ctx.clock.now();
        metadata.version_count += 1;
        metadata_svc.update(ctx, metadata.clone())?;
        if unlock {
            if let Some(locks) = locks {
                locks.unlock(ctx, &Self::lock_id(&metadata))?;
            }
        }
        Ok(metadata)
    }

    /// Schedules the upload-and-commit of a new version of `metadata`'s
    /// object as a background job on the object's lane (commits of the same
    /// object serialize, different objects overlap) and returns its
    /// completion token. Blocking mode waits the token immediately;
    /// non-blocking mode records it and returns.
    fn begin_upload(
        &mut self,
        metadata: FileMetadata,
        data: &[u8],
        map: &ChunkMap,
        prev: Option<&ChunkMap>,
        never_uploaded: bool,
        unlock: bool,
    ) -> Pending<Result<FileMetadata, ScfsError>> {
        let opts = self.transfer_options();
        let lane = metadata.storage_id.clone();
        let ScfsAgent {
            scheduler,
            storage,
            metadata: metadata_svc,
            locks,
            stats,
            clock,
            user,
            ..
        } = self;
        let account = user.clone();
        scheduler.spawn(clock.now(), Some(&lane), |bg_clock| {
            let mut ctx = OpCtx::new(bg_clock, account);
            Self::upload_and_commit(
                storage,
                metadata_svc,
                locks,
                &mut ctx,
                metadata,
                data,
                map,
                prev,
                never_uploaded,
                unlock,
                &opts,
                stats,
            )
        })
    }

    /// Runs the garbage collector if the written-bytes threshold was crossed
    /// (paper §2.5.3). The whole cycle — version prunes, tombstone removal
    /// and the release-journal replay — runs as one job on the scheduler's
    /// GC lane: cycles serialize with one another but overlap with uploads
    /// and prefetches, and never charge the foreground clock.
    fn maybe_run_gc(&mut self) {
        if !self.config.gc.enabled
            || self.written_since_gc < self.config.gc.written_bytes_threshold.get()
        {
            return;
        }
        self.written_since_gc = 0;
        self.stats.gc_runs += 1;
        let keep = self.config.gc.versions_to_keep;
        let journal_opts = self.config.gc.journal_opts();
        // The collector observes the commits this agent has already issued,
        // so its timeline must start after the in-flight ones complete — a
        // reclaimed blob must not disappear at a virtual instant before the
        // upload that wrote it has landed.
        let start = self
            .pending_uploads
            .values()
            .map(|p| p.ready_at)
            .fold(self.clock.now(), SimInstant::max);
        let ScfsAgent {
            scheduler,
            storage,
            metadata,
            owned_files,
            stats,
            user,
            ..
        } = self;
        let account = user.clone();
        scheduler
            .spawn(start, Some(GC_LANE), |bg_clock| {
                let mut ctx = OpCtx::new(bg_clock, account);
                let mut reclaimed = 0u64;
                let mut errors = 0u64;
                let mut fully_deleted: Vec<String> = Vec::new();
                for (storage_id, (path, deleted)) in owned_files.iter() {
                    if *deleted {
                        match storage.delete_all(&mut ctx, storage_id) {
                            // The blobs are released; the tombstone may go only
                            // once its metadata delete actually commits — a
                            // failed delete keeps the entry so a later cycle
                            // retries it instead of stranding the tombstone.
                            Ok(()) => match metadata.delete(&mut ctx, path) {
                                Ok(()) => fully_deleted.push(storage_id.clone()),
                                Err(_) => errors += 1,
                            },
                            // The tombstone stays; the next cycle retries, and
                            // the failure is surfaced through the stats.
                            Err(_) => errors += 1,
                        }
                    } else {
                        match storage.delete_old_versions(&mut ctx, storage_id, keep) {
                            Ok(n) => reclaimed += n as u64,
                            Err(_) => errors += 1,
                        }
                    }
                }
                for id in fully_deleted {
                    owned_files.remove(&id);
                }
                // Phase two: replay the release journal — physically delete the
                // blobs whose refcount hit zero, retrying any entry an earlier
                // cycle failed on. This is what turns a failed delete into a
                // delayed reclamation rather than a leaked orphan.
                match storage.replay_release_journal(&mut ctx, &journal_opts) {
                    Ok(report) => {
                        stats.gc_retried += report.retried;
                        stats.gc_orphans_reclaimed += report.reclaimed_after_retry;
                        stats.gc_errors += report.errors;
                    }
                    Err(_) => errors += 1,
                }
                stats.gc_reclaimed_versions += reclaimed;
                stats.gc_errors += errors;
            })
            // The GC lane serializes collection cycles; the token's value is
            // (), so the bookkeeping can be taken immediately — foreground
            // operations never wait on the collector.
            .into_inner();
    }

    /// Loads the chunk-map manifest of the version of `metadata`'s object
    /// whose root hash is `root`: memory cache, then disk cache, then the
    /// cloud via the consistency-anchor retry loop. This is everything
    /// `open` transfers — the chunks themselves fault in lazily as reads
    /// touch them.
    fn load_manifest(
        &mut self,
        metadata: &FileMetadata,
        root: scfs_crypto::ContentHash,
    ) -> Result<ChunkMap, ScfsError> {
        let manifest_key = Self::manifest_cache_key(&root);
        // The tiered cache handles the memory → disk fallthrough and
        // promotes a disk hit into memory by moving the Arc.
        let cached_manifest = self.cache.get(&mut self.clock, &manifest_key, Some(&root));
        match cached_manifest {
            Some(bytes) => ChunkMap::decode(&bytes).map_err(|e| {
                ScfsError::invalid(format!("cached manifest corrupted: {}", e.reason))
            }),
            None => {
                let mut ctx = OpCtx::new(&mut self.clock, self.user.clone());
                let fetched = anchored_manifest(
                    &mut ctx,
                    self.storage.as_ref(),
                    &metadata.storage_id,
                    &root,
                    self.config.anchor_read_retries,
                    self.config.anchor_retry_backoff,
                )?;
                self.stats.cloud_downloads += 1;
                self.stats.anchor_retries += fetched.retries as u64;
                let bytes: Arc<[u8]> = fetched.data.encode().into();
                self.cache.put(
                    &mut self.clock,
                    &manifest_key,
                    bytes,
                    Some(root),
                    WriteMode::CacheOnly,
                );
                Ok(fetched.data)
            }
        }
    }

    /// Brings the chunks of `map` at `wanted` indices into this agent's
    /// caches and returns their bytes in `wanted` order: memory cache, then
    /// disk cache (promoting), then the cloud — the cloud misses move
    /// through the transfer engine in parallel waves, each forked request
    /// running its own consistency-anchor retry loop. Returns the chunks and
    /// whether the cloud was touched.
    fn fetch_chunks(
        &mut self,
        metadata: &FileMetadata,
        map: &ChunkMap,
        wanted: &[usize],
    ) -> Result<FetchedChunks, ScfsError> {
        // Plan: exactly the wanted chunks absent from both cache levels
        // (probes are free and pin the planned cache hits in the policy).
        let cache = &mut self.cache;
        let plan = TransferPlan::fetch(map, wanted.iter().copied(), |hash| {
            cache.probe(&Self::chunk_cache_key(hash), Some(hash))
        });

        // Execute: fetch the misses in parallel on forked foreground clocks.
        let mut fetched: HashMap<scfs_crypto::ContentHash, Arc<[u8]>> = HashMap::new();
        let cloud_touched = !plan.is_empty();
        if cloud_touched {
            let storage = self.storage.clone();
            let opts = self.transfer_options();
            let (retries, backoff) = (
                self.config.anchor_read_retries,
                self.config.anchor_retry_backoff,
            );
            let mut ctx = OpCtx::new(&mut self.clock, self.user.clone());
            let (chunks, report) = execute_plan(&mut ctx, &opts, &plan, |job, fork_ctx| {
                let fetched = anchored_chunk(
                    fork_ctx,
                    storage.as_ref(),
                    &metadata.storage_id,
                    &job.hash,
                    retries,
                    backoff,
                )?;
                if fetched.data.len() != map.chunk_len(job.index) {
                    return Err(ScfsError::invalid(format!(
                        "chunk {} of {} has {} bytes, expected {}",
                        job.index,
                        metadata.path,
                        fetched.data.len(),
                        map.chunk_len(job.index)
                    )));
                }
                Ok(fetched)
            })?;
            self.stats.transfer_waves += report.waves;
            for (job, chunk) in plan.jobs().iter().zip(chunks) {
                self.stats.chunk_downloads += 1;
                self.stats.bytes_downloaded += chunk.data.len() as u64;
                self.stats.anchor_retries += chunk.retries as u64;
                let key = Self::chunk_cache_key(&job.hash);
                let data: Arc<[u8]> = chunk.data.into();
                // Memory-first: a clean chunk the cloud still holds reaches
                // disk later by demotion if it stays warm enough to matter.
                self.cache.put(
                    &mut self.clock,
                    &key,
                    data.clone(),
                    Some(job.hash),
                    WriteMode::CacheOnly,
                );
                fetched.insert(job.hash, data);
            }
        }

        // Assemble: cloud-fetched bytes directly, the rest from the caches.
        let mut out = Vec::with_capacity(wanted.len());
        for &index in wanted {
            let hash = map.chunks()[index];
            let chunk = match fetched.get(&hash) {
                Some(bytes) => bytes.clone(),
                None => {
                    let key = Self::chunk_cache_key(&hash);
                    // The tiered get promotes a disk hit into memory by
                    // moving the Arc (one insert charge, no payload copy).
                    match self.cache.get(&mut self.clock, &key, Some(&hash)) {
                        Some(chunk) => chunk,
                        None => {
                            // A planned cache hit was evicted by this very
                            // call's cloud puts (tiny caches): fall back to
                            // a direct cloud fetch rather than failing.
                            let mut ctx = OpCtx::new(&mut self.clock, self.user.clone());
                            let refetched = anchored_chunk(
                                &mut ctx,
                                self.storage.as_ref(),
                                &metadata.storage_id,
                                &hash,
                                self.config.anchor_read_retries,
                                self.config.anchor_retry_backoff,
                            )?;
                            self.stats.chunk_downloads += 1;
                            self.stats.bytes_downloaded += refetched.data.len() as u64;
                            self.stats.anchor_retries += refetched.retries as u64;
                            refetched.data.into()
                        }
                    }
                }
            };
            if chunk.len() != map.chunk_len(index) {
                return Err(ScfsError::invalid(format!(
                    "chunk {index} of {} has {} bytes, expected {}",
                    metadata.path,
                    chunk.len(),
                    map.chunk_len(index)
                )));
            }
            out.push(chunk);
        }
        Ok((out, cloud_touched))
    }

    /// Faults the chunks of `file` at `missing` indices into its buffer
    /// (waiting for any in-flight prefetch of those chunks first) and
    /// updates the per-read stats: one `cloud_downloads` when the cloud was
    /// touched, one `cache_served_reads` otherwise.
    fn fault_into_buffer(
        &mut self,
        file: &mut OpenFile,
        missing: &[usize],
    ) -> Result<(), ScfsError> {
        if missing.is_empty() {
            return Ok(());
        }
        let Some(map) = file.chunk_map.clone() else {
            return Err(ScfsError::invalid(
                "read fault on a file without a chunk map",
            ));
        };
        // An in-flight prefetch already has the data on the way: wait for
        // its background completion instead of fetching twice.
        for index in missing {
            if let Some(ready) = file.prefetch_ready.remove(index) {
                self.clock.advance_to(ready);
            }
        }
        let (chunks, cloud_touched) = self.fetch_chunks(&file.metadata, &map, missing)?;
        for (&index, chunk) in missing.iter().zip(&chunks) {
            file.buffer[map.byte_range(index)].copy_from_slice(&chunk[..]);
            if let Some(present) = &mut file.present {
                present[index] = true;
            }
        }
        if let Some(present) = &file.present {
            if present.iter().all(|p| *p) {
                file.present = None;
            }
        }
        if cloud_touched {
            self.stats.cloud_downloads += 1;
        } else {
            self.stats.cache_served_reads += 1;
        }
        Ok(())
    }

    /// Materializes the whole file behind `file` (writes and fsync need the
    /// complete buffer; a dirty handle is therefore always fully backed).
    fn materialize(&mut self, file: &mut OpenFile) -> Result<(), ScfsError> {
        let missing = match &file.chunk_map {
            Some(map) => file.missing_of(0..map.chunk_count()),
            None => Vec::new(),
        };
        self.fault_into_buffer(file, &missing)?;
        file.present = None;
        Ok(())
    }

    /// Schedules a background fetch of the chunks of `file` at `indices`
    /// that are neither materialized, cached, nor already in flight. The
    /// fetch runs on the background clock (it never blocks the caller); a
    /// later foreground read of these chunks waits only for the remainder of
    /// the background transfer. Prefetch is best-effort: errors are dropped,
    /// the foreground fault path will retry and surface them.
    fn prefetch_background(&mut self, file: &mut OpenFile, indices: std::ops::Range<usize>) {
        let map = match &file.chunk_map {
            Some(map) => map.clone(),
            None => return,
        };
        let candidates: Vec<usize> = file
            .missing_of(indices)
            .into_iter()
            .filter(|i| !file.prefetch_ready.contains_key(i))
            .collect();
        if candidates.is_empty() {
            return;
        }
        let cache = &mut self.cache;
        let plan = TransferPlan::fetch(&map, candidates.iter().copied(), |hash| {
            cache.probe(&Self::chunk_cache_key(hash), Some(hash))
        });
        if plan.is_empty() {
            return;
        }
        let storage = self.storage.clone();
        let storage_id = file.metadata.storage_id.clone();
        let opts = self.transfer_options();
        let (retries, backoff) = (
            self.config.anchor_read_retries,
            self.config.anchor_retry_backoff,
        );
        // The prefetch is a scheduler job on the object's lane: it never
        // blocks the caller, serializes behind an in-flight upload of the
        // same object (read-after-write order) and overlaps with everything
        // else. Errors make the job a no-op; the foreground fault path will
        // retry and surface them.
        let ScfsAgent {
            scheduler,
            clock,
            user,
            cache,
            stats,
            ..
        } = self;
        let account = user.clone();
        let token = scheduler.spawn(clock.now(), Some(&storage_id), |bg_clock| {
            let mut bg_ctx = OpCtx::new(bg_clock, account);
            let (chunks, _) = execute_plan(&mut bg_ctx, &opts, &plan, |job, fork_ctx| {
                anchored_chunk(
                    fork_ctx,
                    storage.as_ref(),
                    &storage_id,
                    &job.hash,
                    retries,
                    backoff,
                )
            })?;
            for (job, chunk) in plan.jobs().iter().zip(chunks) {
                stats.prefetched_chunks += 1;
                stats.chunk_downloads += 1;
                stats.bytes_downloaded += chunk.data.len() as u64;
                let key = Self::chunk_cache_key(&job.hash);
                cache.put(
                    bg_ctx.clock,
                    &key,
                    chunk.data.into(),
                    Some(job.hash),
                    WriteMode::CacheOnly,
                );
            }
            Ok::<_, ScfsError>(plan)
        });
        let ready_at = token.ready_at();
        let plan = match token.into_inner() {
            Ok(plan) => plan,
            Err(_) => return,
        };
        // Every planned chunk (and any duplicate of it among the candidates)
        // becomes available at the background completion instant.
        for index in candidates {
            if plan.jobs().iter().any(|j| j.hash == map.chunks()[index]) {
                file.prefetch_ready.insert(index, ready_at);
            }
        }
    }

    /// Writes each chunk of `map` into the disk cache (durability level 1:
    /// the data survives a client restart even before the cloud upload
    /// commits), optionally mirroring into the memory cache.
    fn spill_chunks(&mut self, map: &ChunkMap, data: &[u8], also_memory: bool) {
        let mode = if also_memory {
            WriteMode::Through
        } else {
            WriteMode::DiskOnly
        };
        for (index, chunk_hash) in map.chunks().iter().enumerate() {
            let key = Self::chunk_cache_key(chunk_hash);
            let chunk: Arc<[u8]> = Arc::from(&data[map.byte_range(index)]);
            self.cache
                .put(&mut self.clock, &key, chunk, Some(*chunk_hash), mode);
        }
    }

    /// Writes a version's chunks and manifest into both cache levels.
    fn cache_version_locally(&mut self, map: &ChunkMap, data: &[u8]) {
        self.spill_chunks(map, data, true);
        let manifest: Arc<[u8]> = map.encode().into();
        let root = map.root_hash();
        let manifest_key = Self::manifest_cache_key(&root);
        self.cache.put(
            &mut self.clock,
            &manifest_key,
            manifest,
            Some(root),
            WriteMode::Through,
        );
    }

    /// The lazy byte-range read path: maps `[offset, offset + len)` onto
    /// chunk indices, faults in only the touched, not-yet-materialized
    /// chunks, and — when the handle shows a sequential pattern — schedules
    /// the next chunks on the background clock.
    fn read_ranged(
        &mut self,
        file: &mut OpenFile,
        offset: u64,
        len: usize,
    ) -> Result<Vec<u8>, ScfsError> {
        if !file.flags.read {
            return Err(ScfsError::PermissionDenied {
                path: file.path.clone(),
            });
        }
        let buf_len = file.buffer.len() as u64;
        let start = offset.min(buf_len) as usize;
        let end = offset.saturating_add(len as u64).min(buf_len) as usize;
        let sequential = file.last_read_end == Some(offset);
        if let Some(map) = file.chunk_map.clone() {
            let touched = map.chunks_for_range(start as u64, end - start);
            if file.present.is_some() && touched.len() < map.chunk_count() {
                self.stats.range_reads += 1;
            }
            let missing = file.missing_of(touched.clone());
            self.fault_into_buffer(file, &missing)?;
            // Sequential readers get the next chunks prefetched in the
            // background; the very first read of a handle is not yet a
            // pattern (a cold `read(0, 4 KiB)` moves exactly one chunk).
            let prefetch = self.config.prefetch_chunks;
            if sequential && prefetch > 0 && !touched.is_empty() && touched.end < map.chunk_count()
            {
                let until = touched.end.saturating_add(prefetch).min(map.chunk_count());
                self.prefetch_background(file, touched.end..until);
            }
        }
        let data = file.buffer[start..end].to_vec();
        self.charge_memory(data.len());
        file.last_read_end = Some(end as u64);
        Ok(data)
    }

    /// The write path: writes need the complete old contents around them
    /// (and close needs the whole buffer to chunk the new version), so the
    /// handle is materialized first — through the parallel engine, which
    /// also makes cold writes cheaper than the old eager open.
    fn write_ranged(
        &mut self,
        file: &mut OpenFile,
        offset: u64,
        data: &[u8],
    ) -> Result<usize, ScfsError> {
        if !file.flags.write {
            return Err(ScfsError::PermissionDenied {
                path: file.path.clone(),
            });
        }
        // Checked end-offset arithmetic against the maximum file size: a
        // huge-offset write must error out instead of wrapping in release
        // (and then panicking on the slice) — the read path already clamps
        // with saturating math.
        let end = offset
            .checked_add(data.len() as u64)
            .filter(|&end| end <= crate::types::MAX_FILE_LEN)
            .ok_or_else(|| {
                ScfsError::invalid(format!(
                    "write of {} bytes at offset {offset} exceeds the maximum file size of {} bytes",
                    data.len(),
                    crate::types::MAX_FILE_LEN
                ))
            })? as usize;
        self.materialize(file)?;
        if file.buffer.len() < end {
            file.buffer.resize(end, 0);
        }
        file.buffer[offset as usize..end].copy_from_slice(data);
        file.dirty = true;
        file.metadata.size = file.buffer.len() as u64;
        let len = data.len();
        self.charge_memory(len);
        Ok(len)
    }

    fn truncate_materialized(&mut self, file: &mut OpenFile, size: u64) -> Result<(), ScfsError> {
        if !file.flags.write {
            return Err(ScfsError::PermissionDenied {
                path: file.path.clone(),
            });
        }
        // Same bound as `write_ranged`: growing a file past the maximum size
        // must error, not wrap the usize conversion below.
        if size > crate::types::MAX_FILE_LEN {
            return Err(ScfsError::invalid(format!(
                "truncate to {size} bytes exceeds the maximum file size of {} bytes",
                crate::types::MAX_FILE_LEN
            )));
        }
        self.materialize(file)?;
        file.buffer.resize(size as usize, 0);
        file.dirty = true;
        file.metadata.size = size;
        Ok(())
    }

    /// The `sync` path on one open file: promote its current contents to
    /// cloud durability (see [`crate::durability`]). A dirty or
    /// never-committed handle is chunked, spilled to the local disk and
    /// committed synchronously on the object's lane; a clean handle waits on
    /// the object's in-flight token, if any.
    fn sync_open(&mut self, file: &mut OpenFile) -> Result<DurabilityLevel, ScfsError> {
        if file.dirty || file.never_uploaded {
            self.materialize(file)?;
            let buffer = file.buffer.clone();
            let map = self.config.chunk_map(&buffer);
            // Level 1 first, as always — then the commit.
            self.cache_version_locally(&map, &buffer);
            self.written_since_gc += buffer.len() as u64;
            // The lane orders this commit behind any in-flight upload of the
            // same object; the new token supersedes the pending record.
            self.pending_uploads.remove(&file.metadata.storage_id);
            let token = self.begin_upload(
                file.metadata.clone(),
                &buffer,
                &map,
                file.chunk_map.as_ref(),
                file.never_uploaded,
                false,
            );
            let committed = token.wait(&mut self.clock)?;
            file.metadata = committed;
            file.chunk_map = Some(map);
            file.present = None;
            file.dirty = false;
            file.never_uploaded = false;
            self.maybe_run_gc();
        } else {
            let storage_id = file.metadata.storage_id.clone();
            self.wait_pending_upload(&storage_id);
        }
        Ok(self.storage.cloud_durability())
    }

    /// The manifest-only copy: commit a new version of the destination that
    /// references the source version's chunks through the chunk store's
    /// refcounts — zero chunk transfers. Returns `Ok(None)` when the
    /// preconditions do not hold (the caller materializes instead).
    #[allow(clippy::too_many_arguments)]
    fn copy_and_commit(
        storage: &Arc<dyn FileStorage>,
        metadata_svc: &mut MetadataService,
        locks: &Option<LockManager>,
        ctx: &mut OpCtx<'_>,
        mut dst_md: FileMetadata,
        src_id: &str,
        root: scfs_crypto::ContentHash,
        size: u64,
        unlock: bool,
        stats: &mut AgentStats,
    ) -> Result<Option<FileMetadata>, ScfsError> {
        // Same ACL rule as `upload_and_commit`: shared destinations carry
        // the file ACL on the freshly written manifest.
        let cloud_acl = if dst_md.is_shared() || dst_md.owner != ctx.account {
            let mut acl = dst_md.acl.clone();
            acl.grant(dst_md.owner.clone(), Permission::Write);
            acl.grant(ctx.account.clone(), Permission::Write);
            Some(acl)
        } else {
            None
        };
        let outcome = match storage.copy_version(
            ctx,
            src_id,
            &dst_md.storage_id,
            &root,
            cloud_acl.as_ref(),
        )? {
            Some(outcome) => outcome,
            None => return Ok(None),
        };
        stats.cloud_uploads += 1;
        stats.bytes_uploaded += outcome.bytes_uploaded;
        stats.dedup_hits_cross_file += outcome.dedup_cross_file;
        dst_md.version_hash = Some(outcome.root_hash);
        dst_md.size = size;
        dst_md.modified_at = ctx.clock.now();
        dst_md.version_count += 1;
        metadata_svc.update(ctx, dst_md.clone())?;
        if unlock {
            if let Some(locks) = locks {
                locks.unlock(ctx, &Self::lock_id(&dst_md))?;
            }
        }
        Ok(Some(dst_md))
    }

    /// The fallback copy: materialize the source and write it through the
    /// normal open/read/write/close path (what the [`FileSystem`] trait
    /// default does for every other system).
    fn copy_by_materializing(&mut self, from: &str, to: &str) -> Result<(), ScfsError> {
        let src = self.open(from, OpenFlags::read_only())?;
        let size = self.handle_size(src)?;
        let data = self.read(src, 0, size as usize)?;
        self.close(src)?;
        let dst = self.open(to, OpenFlags::create_truncate())?;
        self.write(dst, 0, &data)?;
        self.close(dst)?;
        Ok(())
    }

    fn get_open(&self, handle: FileHandle) -> Result<&OpenFile, ScfsError> {
        self.open_files
            .get(&handle)
            .ok_or(ScfsError::BadHandle { handle: handle.0 })
    }
}

impl FileSystem for ScfsAgent {
    fn name(&self) -> String {
        format!("SCFS-{}-{}", self.storage.label(), self.config.mode.label())
    }

    fn clock(&self) -> &Clock {
        &self.clock
    }

    fn sleep(&mut self, duration: SimDuration) {
        self.clock.advance(duration);
    }

    fn open(&mut self, path: &str, flags: OpenFlags) -> Result<FileHandle, ScfsError> {
        self.charge_syscall();
        let path = normalize_path(path)?;

        // Step 1: read the file metadata (or create it).
        let existing = {
            let mut ctx = OpCtx::new(&mut self.clock, self.user.clone());
            match self.metadata.get(&mut ctx, &path) {
                Ok(md) if !md.deleted => Some(md),
                _ => None,
            }
        };
        // Read-your-writes across the metadata cache's expiry: while this
        // agent's own non-blocking commit of the object is still in flight,
        // the coordination service may serve the previous version — the
        // pending token's committed metadata is the fresher truth, per
        // object, with no wait and no global drain.
        let existing = existing.map(|md| self.with_pending_commit(&path, md));
        let (mut metadata, never_uploaded) = match existing {
            Some(md) => {
                if md.file_type != FileType::File {
                    return Err(ScfsError::WrongType {
                        path,
                        expected: "file",
                    });
                }
                let never = md.version_hash.is_none();
                (md, never)
            }
            None => {
                if !flags.create {
                    return Err(ScfsError::not_found(path));
                }
                let storage_id = self.alloc_storage_id();
                let now = self.clock.now();
                let md = FileMetadata::new_file(&path, self.user.clone(), storage_id, now);
                let mut ctx = OpCtx::new(&mut self.clock, self.user.clone());
                self.metadata.create(&mut ctx, md.clone())?;
                self.owned_files
                    .insert(md.storage_id.clone(), (path.clone(), false));
                (md, true)
            }
        };

        // Step 2: acquire the write lock for shared files opened for writing.
        let mut locked = false;
        if flags.write
            && self.config.mode.uses_coordination()
            && !self.metadata.is_private(&path, Some(&metadata))
        {
            if let Some(locks) = &self.locks {
                let mut ctx = OpCtx::new(&mut self.clock, self.user.clone());
                locks.try_lock(&mut ctx, &Self::lock_id(&metadata))?;
                locked = true;
            }
        }

        // Step 3: load only the manifest — it lists the chunks this version
        // is made of. The chunks themselves fault in lazily, at byte-range
        // granularity, as reads touch them; a cold open of a 16 MiB file
        // transfers a few hundred bytes, not 16 MiB.
        let (buffer, chunk_map, present) = match metadata.version_hash {
            Some(root) if !flags.truncate => {
                let map = self.load_manifest(&metadata, root)?;
                let buffer = vec![0u8; map.file_len() as usize];
                let present = if map.chunk_count() == 0 {
                    None
                } else {
                    Some(vec![false; map.chunk_count()])
                };
                (buffer, Some(map), present)
            }
            _ => (Vec::new(), None, None),
        };

        if flags.truncate {
            metadata.size = 0;
        }

        let handle = self.alloc_handle();
        let dirty = flags.truncate && metadata.version_hash.is_some();
        self.open_files.insert(
            handle,
            OpenFile {
                path,
                flags,
                metadata,
                buffer,
                chunk_map,
                present,
                prefetch_ready: HashMap::new(),
                last_read_end: None,
                dirty,
                locked,
                never_uploaded,
            },
        );
        Ok(handle)
    }

    fn read(&mut self, handle: FileHandle, offset: u64, len: usize) -> Result<Vec<u8>, ScfsError> {
        self.charge_syscall();
        let mut file = self
            .open_files
            .remove(&handle)
            .ok_or(ScfsError::BadHandle { handle: handle.0 })?;
        let result = self.read_ranged(&mut file, offset, len);
        self.open_files.insert(handle, file);
        result
    }

    fn write(&mut self, handle: FileHandle, offset: u64, data: &[u8]) -> Result<usize, ScfsError> {
        self.charge_syscall();
        let mut file = self
            .open_files
            .remove(&handle)
            .ok_or(ScfsError::BadHandle { handle: handle.0 })?;
        let result = self.write_ranged(&mut file, offset, data);
        self.open_files.insert(handle, file);
        result
    }

    fn truncate(&mut self, handle: FileHandle, size: u64) -> Result<(), ScfsError> {
        self.charge_syscall();
        let mut file = self
            .open_files
            .remove(&handle)
            .ok_or(ScfsError::BadHandle { handle: handle.0 })?;
        let result = self.truncate_materialized(&mut file, size);
        self.open_files.insert(handle, file);
        result
    }

    fn handle_size(&mut self, handle: FileHandle) -> Result<u64, ScfsError> {
        self.charge_syscall();
        // Served from the open handle: the buffer always has the logical
        // length of the file, even while chunks are still unmaterialized.
        Ok(self.get_open(handle)?.buffer.len() as u64)
    }

    fn fsync(&mut self, handle: FileHandle) -> Result<(), ScfsError> {
        self.charge_syscall();
        let file = self.get_open(handle)?;
        if !file.dirty {
            return Ok(());
        }
        let buffer = file.buffer.clone();
        // Durability level 1: the data reaches the local disk, as chunks.
        // No manifest is spilled — the version is not committed yet, so
        // there is no root hash for a reader to look it up under.
        let map = self.config.chunk_map(&buffer);
        self.spill_chunks(&map, &buffer, false);
        Ok(())
    }

    fn sync(&mut self, handle: FileHandle) -> Result<DurabilityLevel, ScfsError> {
        self.charge_syscall();
        let mut file = self
            .open_files
            .remove(&handle)
            .ok_or(ScfsError::BadHandle { handle: handle.0 })?;
        let result = self.sync_open(&mut file);
        self.open_files.insert(handle, file);
        result
    }

    fn close(&mut self, handle: FileHandle) -> Result<(), ScfsError> {
        self.charge_syscall();
        let file = self
            .open_files
            .remove(&handle)
            .ok_or(ScfsError::BadHandle { handle: handle.0 })?;

        if !file.dirty {
            // Nothing to synchronize; just release the lock if we held it.
            if file.locked {
                if let Some(locks) = &self.locks {
                    let mut ctx = OpCtx::new(&mut self.clock, self.user.clone());
                    locks.unlock(&mut ctx, &Self::lock_id(&file.metadata))?;
                }
            }
            return Ok(());
        }

        // A dirty handle is always fully materialized (writes and truncates
        // fault the whole file in first), so the buffer is the new version.
        debug_assert!(file.present.is_none(), "dirty handle left sparse");
        let OpenFile {
            metadata,
            buffer,
            chunk_map: prev_map,
            locked,
            never_uploaded,
            ..
        } = file;

        // Chunk the new version; its root hash — the one hash the anchor
        // stores — is known immediately, before any cloud access.
        let map = self.config.chunk_map(&buffer);
        let new_hash = map.root_hash();
        // The data always reaches the local disk first (level 1).
        self.cache_version_locally(&map, &buffer);
        self.written_since_gc += buffer.len() as u64;

        match self.config.mode {
            Mode::Blocking => {
                // Consistency-anchor write, fully synchronous: dirty chunks
                // to the cloud(s), then metadata to the coordination service,
                // then unlock (Figure 4, close path) — the background job
                // awaited immediately on the foreground clock.
                let token = self.begin_upload(
                    metadata,
                    &buffer,
                    &map,
                    prev_map.as_ref(),
                    never_uploaded,
                    locked,
                );
                token.wait(&mut self.clock)?;
            }
            Mode::NonBlocking | Mode::NonSharing => {
                // The close returns now; the upload, metadata update and
                // unlock happen on the object's background lane. This
                // client's own view is updated immediately through the local
                // caches; everyone else waits on this object's token.
                let mut updated = metadata.clone();
                updated.version_hash = Some(new_hash);
                updated.size = buffer.len() as u64;
                updated.modified_at = self.clock.now();
                updated.version_count += 1;
                let now = self.clock.now();
                self.metadata.update_local(updated, now);

                // Bounded queue: at most `max_pending_uploads` commits in
                // flight, with the close stalling on the earliest token.
                self.apply_close_backpressure();
                let storage_id = metadata.storage_id.clone();
                let token = self.begin_upload(
                    metadata,
                    &buffer,
                    &map,
                    prev_map.as_ref(),
                    never_uploaded,
                    locked,
                );
                let (started_at, ready_at) = (token.started_at(), token.ready_at());
                let committed = token.into_inner()?;
                // A second close of the same object supersedes the earlier
                // record: the lane already ordered the commits, and the
                // later token covers the earlier one.
                self.pending_uploads.insert(
                    storage_id,
                    PendingUpload {
                        path: committed.path.clone(),
                        metadata: committed,
                        started_at,
                        ready_at,
                    },
                );
            }
        }

        self.maybe_run_gc();
        Ok(())
    }

    fn stat(&mut self, path: &str) -> Result<FileMetadata, ScfsError> {
        self.charge_syscall();
        let path = normalize_path(path)?;
        // An open, dirty file is described by its in-memory state.
        if let Some(open) = self.open_files.values().find(|f| f.path == path && f.dirty) {
            let mut md = open.metadata.clone();
            md.size = open.buffer.len() as u64;
            return Ok(md);
        }
        let md = {
            let mut ctx = OpCtx::new(&mut self.clock, self.user.clone());
            self.metadata.get(&mut ctx, &path)?
        };
        if md.deleted {
            return Err(ScfsError::not_found(path));
        }
        // Read-your-writes: an in-flight background commit of this object is
        // already part of this client's view (see `open`).
        Ok(self.with_pending_commit(&path, md))
    }

    fn mkdir(&mut self, path: &str) -> Result<(), ScfsError> {
        self.charge_syscall();
        let path = normalize_path(path)?;
        let now = self.clock.now();
        let md = FileMetadata::new_directory(&path, self.user.clone(), now);
        let mut ctx = OpCtx::new(&mut self.clock, self.user.clone());
        if !self.metadata.parent_exists(&mut ctx, &path) {
            return Err(ScfsError::not_found(crate::types::parent_of(&path)));
        }
        self.metadata.create(&mut ctx, md)
    }

    fn readdir(&mut self, path: &str) -> Result<Vec<String>, ScfsError> {
        self.charge_syscall();
        let path = normalize_path(path)?;
        let mut ctx = OpCtx::new(&mut self.clock, self.user.clone());
        self.metadata.list_children(&mut ctx, &path)
    }

    fn unlink(&mut self, path: &str) -> Result<(), ScfsError> {
        self.charge_syscall();
        let path = normalize_path(path)?;
        let md = {
            let mut ctx = OpCtx::new(&mut self.clock, self.user.clone());
            self.metadata.get(&mut ctx, &path)?
        };
        if md.deleted {
            return Err(ScfsError::not_found(path));
        }
        if md.file_type == FileType::Directory {
            return Err(ScfsError::WrongType {
                path,
                expected: "file",
            });
        }
        // Files are only marked as deleted; the garbage collector reclaims
        // the cloud objects later (paper §2.5.3). The tombstone carries this
        // agent's freshest view of the object (including a version committed
        // by a still-pending upload).
        let mut md = self.with_pending_commit(&path, md);
        md.deleted = true;
        if let Some(entry) = self.owned_files.get_mut(&md.storage_id) {
            entry.1 = true;
        }
        if self.pending_uploads.contains_key(&md.storage_id) {
            // An upload of this object is still in flight: commit the
            // tombstone on the object's lane, *after* that commit, so the
            // background metadata update cannot resurrect the file — and the
            // foreground never waits (unlinking a transient file right after
            // a non-blocking close is the hot path of Figure 8).
            let storage_id = md.storage_id.clone();
            self.pending_uploads.remove(&storage_id);
            let now = self.clock.now();
            self.metadata.update_local(md.clone(), now);
            let ScfsAgent {
                scheduler,
                metadata,
                clock,
                user,
                ..
            } = self;
            let account = user.clone();
            let token = scheduler.spawn(clock.now(), Some(&storage_id), |bg_clock| {
                let mut ctx = OpCtx::new(bg_clock, account);
                metadata.update(&mut ctx, md)
            });
            token.into_inner()?;
        } else {
            let mut ctx = OpCtx::new(&mut self.clock, self.user.clone());
            self.metadata.update(&mut ctx, md)?;
        }
        // Cached chunks and manifests are content-addressed, not keyed by
        // path; they age out of the LRU caches once nothing reads them.
        Ok(())
    }

    fn rename(&mut self, from: &str, to: &str) -> Result<(), ScfsError> {
        self.charge_syscall();
        let from = normalize_path(from)?;
        let to = normalize_path(to)?;
        // Rename moves a whole path prefix and may clobber the destination:
        // the moved metadata must carry any in-flight version commits, and
        // pending records under either tree would go stale — settle exactly
        // those tokens first.
        self.wait_pending_uploads_under(&from, &to);
        let mut ctx = OpCtx::new(&mut self.clock, self.user.clone());
        self.metadata.rename(&mut ctx, &from, &to)?;
        // The GC bookkeeping moves with the prefix: a later unlink + GC of a
        // renamed file must delete the tombstone under its *current* path.
        let from_dir = format!("{from}/");
        for (path, _) in self.owned_files.values_mut() {
            if *path == from {
                *path = to.clone();
            } else if let Some(rest) = path.strip_prefix(&from_dir) {
                *path = format!("{to}/{rest}");
            }
        }
        Ok(())
    }

    fn setfacl(
        &mut self,
        path: &str,
        user: &AccountId,
        permission: Permission,
    ) -> Result<(), ScfsError> {
        self.charge_syscall();
        let path = normalize_path(path)?;
        // The grant must not be overwritten by an in-flight metadata update
        // from an earlier non-blocking close of this file — wait on *this
        // object's* completion token, not on the global drain: grants on
        // other files proceed while unrelated uploads are still in flight.
        self.wait_pending_upload_of_path(&path);
        let mut ctx = OpCtx::new(&mut self.clock, self.user.clone());
        let metadata = self.metadata.get(&mut ctx, &path)?;
        if metadata.owner != self.user {
            return Err(ScfsError::PermissionDenied { path });
        }
        let mut acl = metadata.acl.clone();
        acl.grant(user.clone(), permission);
        // (i) update the ACLs of the cloud objects holding the file data;
        // (ii) update the metadata tuple (and its coordination-service ACL).
        if metadata.file_type == FileType::File && metadata.version_hash.is_some() {
            self.storage.set_acl(&mut ctx, &metadata.storage_id, &acl)?;
        }
        self.metadata.set_acl(&mut ctx, metadata, acl)?;
        Ok(())
    }

    fn getfacl(&mut self, path: &str) -> Result<Acl, ScfsError> {
        self.charge_syscall();
        let path = normalize_path(path)?;
        let mut ctx = OpCtx::new(&mut self.clock, self.user.clone());
        Ok(self.metadata.get(&mut ctx, &path)?.acl)
    }

    /// Manifest-only copy: the destination's new version references the
    /// source version's chunks through the global chunk store's refcounts,
    /// so zero chunks move — only a manifest and a metadata update — and
    /// every referenced chunk counts as a cross-file dedup hit
    /// ([`AgentStats::dedup_hits_cross_file`]). Falls back to the
    /// materializing open/read/write/close path (the trait default) when the
    /// source has no committed version, a dirty open handle hides newer
    /// bytes, or the backend keeps no chunk registry.
    fn copy_file(&mut self, from: &str, to: &str) -> Result<(), ScfsError> {
        self.charge_syscall();
        let from = normalize_path(from)?;
        let to = normalize_path(to)?;
        let src_md = {
            let mut ctx = OpCtx::new(&mut self.clock, self.user.clone());
            match self.metadata.get(&mut ctx, &from) {
                Ok(md) if !md.deleted => md,
                _ => return Err(ScfsError::not_found(from)),
            }
        };
        if src_md.file_type != FileType::File {
            return Err(ScfsError::WrongType {
                path: from,
                expected: "file",
            });
        }
        // This agent's own in-flight commit of the source is part of its
        // view (read-your-writes), and fixes the commit's lower time bound.
        let src_md = self.with_pending_commit(&from, src_md);
        // Like the materializing default (whose `open` reads the committed
        // version, never another handle's dirty buffer), the copy source is
        // the last committed version; a file that never committed one falls
        // back to the open/read/write path.
        let root = match src_md.version_hash {
            Some(root) => root,
            None => return self.copy_by_materializing(&from, &to),
        };
        let size = src_md.size;
        let src_id = src_md.storage_id.clone();
        let src_ready = self.pending_by_path(&from).map(|p| p.ready_at);

        // Destination metadata: a new version of an existing file, or a
        // fresh object — exactly what a write-open would have set up.
        let existing_dst = {
            let mut ctx = OpCtx::new(&mut self.clock, self.user.clone());
            match self.metadata.get(&mut ctx, &to) {
                Ok(md) if !md.deleted => Some(md),
                _ => None,
            }
        };
        let dst_md = match existing_dst {
            Some(md) => {
                if md.file_type != FileType::File {
                    return Err(ScfsError::WrongType {
                        path: to,
                        expected: "file",
                    });
                }
                md
            }
            None => {
                let storage_id = self.alloc_storage_id();
                let now = self.clock.now();
                let md = FileMetadata::new_file(&to, self.user.clone(), storage_id, now);
                let mut ctx = OpCtx::new(&mut self.clock, self.user.clone());
                self.metadata.create(&mut ctx, md.clone())?;
                self.owned_files
                    .insert(md.storage_id.clone(), (to.clone(), false));
                md
            }
        };

        // Write lock on the destination, as a write-open would take it.
        let mut locked = false;
        if self.config.mode.uses_coordination() && !self.metadata.is_private(&to, Some(&dst_md)) {
            if let Some(locks) = &self.locks {
                let mut ctx = OpCtx::new(&mut self.clock, self.user.clone());
                locks.try_lock(&mut ctx, &Self::lock_id(&dst_md))?;
                locked = true;
            }
        }

        // The commit runs on the destination's lane, no earlier than the
        // source's chunks are in the cloud; blocking mode waits the token,
        // the other modes surface it like any non-blocking close.
        let blocking = self.config.mode.blocking_close();
        if !blocking {
            self.apply_close_backpressure();
        }
        let start = match src_ready {
            Some(ready) => self.clock.now().max(ready),
            None => self.clock.now(),
        };
        let lane = dst_md.storage_id.clone();
        let ScfsAgent {
            scheduler,
            storage,
            metadata: metadata_svc,
            locks,
            stats,
            user,
            ..
        } = self;
        let account = user.clone();
        let token = scheduler.spawn(start, Some(&lane), |bg_clock| {
            let mut ctx = OpCtx::new(bg_clock, account);
            Self::copy_and_commit(
                storage,
                metadata_svc,
                locks,
                &mut ctx,
                dst_md,
                &src_id,
                root,
                size,
                locked,
                stats,
            )
        });
        let (started_at, ready_at) = (token.started_at(), token.ready_at());
        let committed = if blocking {
            token.wait(&mut self.clock)?
        } else {
            token.into_inner()?
        };
        match committed {
            Some(md) => {
                if !blocking {
                    // The manifest-only commit is known to have succeeded:
                    // only now does this client's local view advance (an
                    // optimistic update before the outcome would advertise a
                    // version that may never exist when the backend falls
                    // back to materializing).
                    let now = self.clock.now();
                    self.metadata.update_local(md.clone(), now);
                    self.pending_uploads.insert(
                        lane,
                        PendingUpload {
                            path: md.path.clone(),
                            metadata: md,
                            started_at,
                            ready_at,
                        },
                    );
                }
                self.written_since_gc += size;
                self.maybe_run_gc();
                Ok(())
            }
            // The backend keeps no chunk registry for the source (or a
            // chunk is no longer stored): materialize instead.
            None => self.copy_by_materializing(&from, &to),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::SingleCloudStorage;
    use cloud_store::sim_cloud::SimulatedCloud;
    use coord::replication::ReplicatedCoordinator;

    fn test_agent(mode: Mode) -> ScfsAgent {
        let cloud = Arc::new(SimulatedCloud::test("s3"));
        let storage = Arc::new(SingleCloudStorage::new(cloud));
        let coord: Arc<dyn CoordinationService> = Arc::new(ReplicatedCoordinator::test());
        ScfsAgent::mount(
            "alice".into(),
            ScfsConfig::test(mode),
            storage,
            Some(coord),
            7,
        )
        .unwrap()
    }

    #[test]
    fn create_write_read_round_trip() {
        let mut fs = test_agent(Mode::Blocking);
        fs.write_file("/docs/report.txt", b"hello SCFS").unwrap();
        assert_eq!(fs.read_file("/docs/report.txt").unwrap(), b"hello SCFS");
        let md = fs.stat("/docs/report.txt").unwrap();
        assert_eq!(md.size, 10);
        assert_eq!(md.version_count, 1);
        assert!(md.version_hash.is_some());
    }

    #[test]
    fn open_missing_file_without_create_fails() {
        let mut fs = test_agent(Mode::Blocking);
        assert!(matches!(
            fs.open("/nope", OpenFlags::read_only()),
            Err(ScfsError::NotFound { .. })
        ));
    }

    #[test]
    fn reads_and_writes_use_offsets() {
        let mut fs = test_agent(Mode::Blocking);
        let h = fs.open("/f", OpenFlags::create()).unwrap();
        fs.write(h, 0, b"0123456789").unwrap();
        fs.write(h, 4, b"XY").unwrap();
        assert_eq!(fs.read(h, 3, 4).unwrap(), b"3XY6");
        fs.truncate(h, 5).unwrap();
        assert_eq!(fs.read(h, 0, 100).unwrap(), b"0123X");
        fs.close(h).unwrap();
        assert_eq!(fs.stat("/f").unwrap().size, 5);
    }

    #[test]
    fn consistency_on_close_second_client_sees_update() {
        // Two agents for two users sharing one cloud + coordination service.
        let cloud = Arc::new(SimulatedCloud::test("s3"));
        let storage = Arc::new(SingleCloudStorage::new(cloud));
        let coord: Arc<dyn CoordinationService> = Arc::new(ReplicatedCoordinator::test());
        let mut alice = ScfsAgent::mount(
            "alice".into(),
            ScfsConfig::test(Mode::Blocking),
            storage.clone(),
            Some(coord.clone()),
            1,
        )
        .unwrap();
        let mut bob = ScfsAgent::mount(
            "bob".into(),
            ScfsConfig::test(Mode::Blocking),
            storage,
            Some(coord),
            2,
        )
        .unwrap();

        alice.write_file("/shared/doc", b"v1 from alice").unwrap();
        alice
            .setfacl("/shared/doc", &"bob".into(), Permission::Write)
            .unwrap();
        // Bob opens after Alice's close: he must observe the latest version.
        bob.sleep(SimDuration::from_secs(1));
        assert_eq!(bob.read_file("/shared/doc").unwrap(), b"v1 from alice");
    }

    #[test]
    fn write_write_conflicts_are_prevented_by_locks() {
        let cloud = Arc::new(SimulatedCloud::test("s3"));
        let storage = Arc::new(SingleCloudStorage::new(cloud));
        let coord: Arc<dyn CoordinationService> = Arc::new(ReplicatedCoordinator::test());
        let mut alice = ScfsAgent::mount(
            "alice".into(),
            ScfsConfig::test(Mode::Blocking),
            storage.clone(),
            Some(coord.clone()),
            1,
        )
        .unwrap();
        let mut bob = ScfsAgent::mount(
            "bob".into(),
            ScfsConfig::test(Mode::Blocking),
            storage,
            Some(coord),
            2,
        )
        .unwrap();

        alice.write_file("/shared/doc", b"v1").unwrap();
        alice
            .setfacl("/shared/doc", &"bob".into(), Permission::Write)
            .unwrap();
        let h = alice.open("/shared/doc", OpenFlags::read_write()).unwrap();
        // Bob cannot open the same file for writing while Alice holds it.
        bob.sleep(SimDuration::from_secs(1));
        assert!(matches!(
            bob.open("/shared/doc", OpenFlags::read_write()),
            Err(ScfsError::Locked { .. })
        ));
        // Reading does not require the lock.
        assert_eq!(bob.read_file("/shared/doc").unwrap(), b"v1");
        alice.close(h).unwrap();
        bob.sleep(SimDuration::from_secs(1));
        let h2 = bob.open("/shared/doc", OpenFlags::read_write()).unwrap();
        bob.close(h2).unwrap();
    }

    #[test]
    fn non_blocking_close_is_fast_but_eventually_durable() {
        let mut fs = test_agent(Mode::NonBlocking);
        let start = fs.now();
        fs.write_file("/f", &vec![1u8; 100_000]).unwrap();
        let foreground = fs.now().duration_since(start);
        // The upload still happened (on the background timeline).
        assert_eq!(fs.stats().cloud_uploads, 1);
        assert!(fs.background_drain_instant() >= fs.now());
        // And the file remains readable by this client.
        assert_eq!(fs.read_file("/f").unwrap().len(), 100_000);
        // Foreground latency must not include a cloud round trip: with the
        // instantaneous test cloud this is just local work.
        assert!(foreground < SimDuration::from_secs(1));
    }

    #[test]
    fn non_sharing_mode_needs_no_coordination_service() {
        let cloud = Arc::new(SimulatedCloud::test("s3"));
        let storage = Arc::new(SingleCloudStorage::new(cloud));
        let mut fs = ScfsAgent::mount(
            "alice".into(),
            ScfsConfig::test(Mode::NonSharing),
            storage,
            None,
            3,
        )
        .unwrap();
        fs.write_file("/private/notes", b"only mine").unwrap();
        assert_eq!(fs.read_file("/private/notes").unwrap(), b"only mine");
        assert_eq!(fs.name(), "SCFS-AWS-NS");
    }

    #[test]
    fn blocking_mode_requires_coordination_service() {
        let cloud = Arc::new(SimulatedCloud::test("s3"));
        let storage = Arc::new(SingleCloudStorage::new(cloud));
        assert!(ScfsAgent::mount(
            "alice".into(),
            ScfsConfig::test(Mode::Blocking),
            storage,
            None,
            3,
        )
        .is_err());
    }

    #[test]
    fn directories_mkdir_readdir_unlink() {
        let mut fs = test_agent(Mode::Blocking);
        fs.mkdir("/projects").unwrap();
        fs.write_file("/projects/a.txt", b"a").unwrap();
        fs.write_file("/projects/b.txt", b"b").unwrap();
        let listing = fs.readdir("/projects").unwrap();
        assert_eq!(listing.len(), 2);
        fs.unlink("/projects/a.txt").unwrap();
        assert!(matches!(
            fs.stat("/projects/a.txt"),
            Err(ScfsError::NotFound { .. })
        ));
        assert_eq!(
            fs.readdir("/projects").unwrap().len(),
            2,
            "tombstone remains until GC"
        );
        // mkdir under a missing parent fails.
        assert!(fs.mkdir("/does/not/exist").is_err());
    }

    #[test]
    fn rename_moves_files() {
        let mut fs = test_agent(Mode::Blocking);
        fs.write_file("/old-name", b"data").unwrap();
        fs.rename("/old-name", "/new-name").unwrap();
        assert_eq!(fs.read_file("/new-name").unwrap(), b"data");
        assert!(fs.stat("/old-name").is_err());
    }

    #[test]
    fn stat_of_open_dirty_file_reflects_buffer() {
        let mut fs = test_agent(Mode::Blocking);
        let h = fs.open("/f", OpenFlags::create()).unwrap();
        fs.write(h, 0, &vec![0u8; 4096]).unwrap();
        assert_eq!(fs.stat("/f").unwrap().size, 4096);
        fs.close(h).unwrap();
    }

    #[test]
    fn getfacl_and_setfacl() {
        let mut fs = test_agent(Mode::Blocking);
        fs.write_file("/doc", b"x").unwrap();
        assert!(fs.getfacl("/doc").unwrap().is_empty());
        fs.setfacl("/doc", &"bob".into(), Permission::Read).unwrap();
        assert!(fs
            .getfacl("/doc")
            .unwrap()
            .allows(&"bob".into(), Permission::Read));
    }

    #[test]
    fn garbage_collector_reclaims_old_versions() {
        let cloud = Arc::new(SimulatedCloud::test("s3"));
        let storage = Arc::new(SingleCloudStorage::new(cloud.clone()));
        let coord: Arc<dyn CoordinationService> = Arc::new(ReplicatedCoordinator::test());
        let mut config = ScfsConfig::test(Mode::Blocking);
        config.gc.written_bytes_threshold = Bytes::new(50_000);
        config.gc.versions_to_keep = 2;
        let mut fs = ScfsAgent::mount("alice".into(), config, storage, Some(coord), 5).unwrap();
        for _ in 0..10 {
            fs.write_file("/big", &vec![7u8; 10_000]).unwrap();
        }
        assert!(fs.stats().gc_runs >= 1);
        assert!(fs.stats().gc_reclaimed_versions > 0);
        // The latest version is still readable.
        assert_eq!(fs.read_file("/big").unwrap().len(), 10_000);
    }

    /// A storage wrapper whose GC deletions always fail, for testing that
    /// the collector surfaces failures instead of swallowing them.
    struct FailingGcStorage(SingleCloudStorage);

    impl FileStorage for FailingGcStorage {
        fn label(&self) -> &'static str {
            self.0.label()
        }

        #[allow(clippy::too_many_arguments)]
        fn write_version(
            &self,
            ctx: &mut OpCtx<'_>,
            id: &str,
            data: &[u8],
            map: &ChunkMap,
            prev: Option<&ChunkMap>,
            is_new: bool,
            acl: Option<&cloud_store::types::Acl>,
            opts: &TransferOptions,
        ) -> Result<crate::backend::WriteOutcome, ScfsError> {
            self.0
                .write_version(ctx, id, data, map, prev, is_new, acl, opts)
        }

        fn read_manifest(
            &self,
            ctx: &mut OpCtx<'_>,
            id: &str,
            hash: &scfs_crypto::ContentHash,
        ) -> Result<ChunkMap, ScfsError> {
            self.0.read_manifest(ctx, id, hash)
        }

        fn read_chunk(
            &self,
            ctx: &mut OpCtx<'_>,
            id: &str,
            hash: &scfs_crypto::ContentHash,
        ) -> Result<Vec<u8>, ScfsError> {
            self.0.read_chunk(ctx, id, hash)
        }

        fn delete_old_versions(
            &self,
            _ctx: &mut OpCtx<'_>,
            _id: &str,
            _keep: usize,
        ) -> Result<usize, ScfsError> {
            Err(ScfsError::invalid("injected GC failure"))
        }

        fn delete_all(&self, _ctx: &mut OpCtx<'_>, _id: &str) -> Result<(), ScfsError> {
            Err(ScfsError::invalid("injected GC failure"))
        }

        fn set_acl(
            &self,
            ctx: &mut OpCtx<'_>,
            id: &str,
            acl: &cloud_store::types::Acl,
        ) -> Result<(), ScfsError> {
            self.0.set_acl(ctx, id, acl)
        }
    }

    #[test]
    fn gc_failures_are_counted_not_swallowed() {
        let storage = Arc::new(FailingGcStorage(SingleCloudStorage::new(Arc::new(
            SimulatedCloud::test("s3"),
        ))));
        let coord: Arc<dyn CoordinationService> = Arc::new(ReplicatedCoordinator::test());
        let mut config = ScfsConfig::test(Mode::Blocking);
        config.gc.written_bytes_threshold = Bytes::new(50_000);
        config.gc.versions_to_keep = 1;
        let mut fs = ScfsAgent::mount("alice".into(), config, storage, Some(coord), 5).unwrap();
        fs.write_file("/doomed", &vec![1u8; 10_000]).unwrap();
        fs.unlink("/doomed").unwrap();
        for _ in 0..10 {
            fs.write_file("/big", &vec![7u8; 10_000]).unwrap();
        }
        let stats = fs.stats();
        assert!(stats.gc_runs >= 1);
        assert_eq!(stats.gc_reclaimed_versions, 0);
        assert!(
            stats.gc_errors >= 2,
            "both the prune and the tombstone removal failures must surface, got {}",
            stats.gc_errors
        );
        // The data is untouched by the failing collector.
        assert_eq!(fs.read_file("/big").unwrap().len(), 10_000);
    }

    /// A coordination service whose `delete` always fails, for testing the
    /// GC's tombstone-removal retry path.
    struct FailingDeleteCoord(ReplicatedCoordinator);

    impl CoordinationService for FailingDeleteCoord {
        fn put(
            &self,
            ctx: &mut OpCtx<'_>,
            key: &str,
            value: Vec<u8>,
        ) -> Result<u64, coord::error::CoordError> {
            self.0.put(ctx, key, value)
        }

        fn cas(
            &self,
            ctx: &mut OpCtx<'_>,
            key: &str,
            expected: Option<u64>,
            value: Vec<u8>,
        ) -> Result<u64, coord::error::CoordError> {
            self.0.cas(ctx, key, expected, value)
        }

        fn create_ephemeral(
            &self,
            ctx: &mut OpCtx<'_>,
            key: &str,
            value: Vec<u8>,
            session: &SessionId,
            lease: SimDuration,
        ) -> Result<(), coord::error::CoordError> {
            self.0.create_ephemeral(ctx, key, value, session, lease)
        }

        fn get(
            &self,
            ctx: &mut OpCtx<'_>,
            key: &str,
        ) -> Result<coord::service::Entry, coord::error::CoordError> {
            self.0.get(ctx, key)
        }

        fn delete(&self, ctx: &mut OpCtx<'_>, key: &str) -> Result<(), coord::error::CoordError> {
            // Only metadata tuples fail; lock releases (ephemeral entries)
            // go through so closes keep working.
            if key.contains("/locks/") {
                return self.0.delete(ctx, key);
            }
            Err(coord::error::CoordError::Unavailable {
                reason: format!("injected metadata-delete failure for {key}"),
            })
        }

        fn list(
            &self,
            ctx: &mut OpCtx<'_>,
            prefix: &str,
        ) -> Result<Vec<String>, coord::error::CoordError> {
            self.0.list(ctx, prefix)
        }

        fn set_acl(
            &self,
            ctx: &mut OpCtx<'_>,
            key: &str,
            acl: Acl,
        ) -> Result<(), coord::error::CoordError> {
            self.0.set_acl(ctx, key, acl)
        }

        fn rename_prefix(
            &self,
            ctx: &mut OpCtx<'_>,
            old_prefix: &str,
            new_prefix: &str,
        ) -> Result<usize, coord::error::CoordError> {
            self.0.rename_prefix(ctx, old_prefix, new_prefix)
        }

        fn access_count(&self) -> u64 {
            self.0.access_count()
        }

        fn entry_count(&self) -> usize {
            self.0.entry_count()
        }
    }

    #[test]
    fn failed_tombstone_metadata_delete_is_counted_and_retried() {
        let cloud = Arc::new(SimulatedCloud::test("s3"));
        let storage = Arc::new(SingleCloudStorage::new(cloud));
        let coord: Arc<dyn CoordinationService> =
            Arc::new(FailingDeleteCoord(ReplicatedCoordinator::test()));
        let mut config = ScfsConfig::test(Mode::Blocking);
        config.gc.written_bytes_threshold = Bytes::new(50_000);
        config.gc.versions_to_keep = 1;
        let mut fs = ScfsAgent::mount("alice".into(), config, storage, Some(coord), 5).unwrap();
        fs.write_file("/doomed", &vec![1u8; 10_000]).unwrap();
        fs.unlink("/doomed").unwrap();
        let mut last_errors = 0;
        for _ in 0..10 {
            fs.write_file("/big", &vec![7u8; 10_000]).unwrap();
            last_errors = fs.stats().gc_errors;
        }
        let stats = fs.stats();
        assert!(stats.gc_runs >= 2);
        assert!(
            stats.gc_errors >= 2,
            "every cycle's failed tombstone removal must surface, got {}",
            stats.gc_errors
        );
        assert!(last_errors >= 2, "the entry is retried each cycle");
    }

    #[test]
    fn huge_offset_write_errors_instead_of_panicking() {
        // Regression: `offset as usize + data.len()` wrapped in release
        // builds and panicked on the slice; it must be a checked error now.
        let mut fs = test_agent(Mode::Blocking);
        let h = fs.open("/f", OpenFlags::create()).unwrap();
        fs.write(h, 0, b"ok").unwrap();
        for offset in [
            u64::MAX,
            u64::MAX - 1,
            crate::types::MAX_FILE_LEN,
            crate::types::MAX_FILE_LEN - 1,
        ] {
            assert!(
                matches!(fs.write(h, offset, b"boom"), Err(ScfsError::Invalid { .. })),
                "write at offset {offset} must be rejected"
            );
        }
        // A write ending exactly at the bound is in principle legal (it just
        // allocates); the guard must only reject what *exceeds* the bound.
        assert!(matches!(
            fs.write(h, crate::types::MAX_FILE_LEN - 3, b"boom"),
            Err(ScfsError::Invalid { .. })
        ));
        // The handle is still usable and the data intact.
        assert_eq!(fs.read(h, 0, 2).unwrap(), b"ok");
        fs.write(h, 2, b"!").unwrap();
        fs.close(h).unwrap();
        assert_eq!(fs.read_file("/f").unwrap(), b"ok!");
    }

    #[test]
    fn huge_truncate_errors_instead_of_wrapping() {
        let mut fs = test_agent(Mode::Blocking);
        let h = fs.open("/f", OpenFlags::create()).unwrap();
        fs.write(h, 0, b"data").unwrap();
        assert!(matches!(
            fs.truncate(h, crate::types::MAX_FILE_LEN + 1),
            Err(ScfsError::Invalid { .. })
        ));
        assert!(matches!(
            fs.truncate(h, u64::MAX),
            Err(ScfsError::Invalid { .. })
        ));
        fs.truncate(h, 2).unwrap();
        fs.close(h).unwrap();
        assert_eq!(fs.read_file("/f").unwrap(), b"da");
    }

    #[test]
    fn cdc_agent_round_trips_and_reuses_shifted_chunks() {
        // The whole data path — transfer engine, chunk store, caches, lazy
        // reads — must work unchanged over content-defined maps.
        let cloud = Arc::new(SimulatedCloud::test("s3"));
        let storage = Arc::new(SingleCloudStorage::new(cloud));
        let coord: Arc<dyn CoordinationService> = Arc::new(ReplicatedCoordinator::test());
        let mut config = ScfsConfig::test(Mode::Blocking);
        config.chunk_size = Bytes::kib(4);
        let mut fs =
            ScfsAgent::mount("alice".into(), config.with_cdc(), storage, Some(coord), 7).unwrap();
        let mut rng = sim_core::rng::DetRng::new(17);
        let data = rng.bytes(256 * 1024);
        fs.write_file("/f", &data).unwrap();
        assert_eq!(fs.read_file("/f").unwrap(), data);
        let chunks_before = fs.stats().chunk_uploads;

        // Insert 100 bytes near the front: the shifted tail must re-align,
        // so only a handful of chunks move — not the ~60 chunks after the
        // edit point.
        let h = fs.open("/f", OpenFlags::read_write()).unwrap();
        let mut edited = data.clone();
        edited.splice(10_000..10_000, rng.bytes(100));
        fs.write(h, 10_000, &edited[10_000..]).unwrap();
        fs.close(h).unwrap();
        let moved = fs.stats().chunk_uploads - chunks_before;
        assert!(
            moved <= 8,
            "a 100-byte insert moved {moved} chunks under CDC"
        );
        assert_eq!(fs.read_file("/f").unwrap(), edited);
    }

    #[test]
    fn handle_size_tracks_the_open_buffer() {
        let mut fs = test_agent(Mode::Blocking);
        let h = fs.open("/f", OpenFlags::create()).unwrap();
        assert_eq!(fs.handle_size(h).unwrap(), 0);
        fs.write(h, 0, &vec![0u8; 4096]).unwrap();
        assert_eq!(fs.handle_size(h).unwrap(), 4096);
        fs.truncate(h, 100).unwrap();
        assert_eq!(fs.handle_size(h).unwrap(), 100);
        fs.close(h).unwrap();
        // A clean, lazily opened handle reports the full size without
        // materializing anything.
        let h2 = fs.open("/f", OpenFlags::read_only()).unwrap();
        assert_eq!(fs.handle_size(h2).unwrap(), 100);
        assert!(matches!(
            fs.handle_size(FileHandle(999)),
            Err(ScfsError::BadHandle { .. })
        ));
        fs.close(h2).unwrap();
    }

    #[test]
    fn cache_serves_repeated_reads_without_cloud_access() {
        let mut fs = test_agent(Mode::Blocking);
        fs.write_file("/f", &vec![1u8; 10_000]).unwrap();
        let downloads_before = fs.stats().cloud_downloads;
        for _ in 0..5 {
            fs.read_file("/f").unwrap();
        }
        assert_eq!(
            fs.stats().cloud_downloads,
            downloads_before,
            "reads of an unmodified file must be served locally (avoid reading principle)"
        );
        assert!(fs.stats().cache_served_reads >= 5);
    }

    #[test]
    fn bad_handles_are_rejected() {
        let mut fs = test_agent(Mode::Blocking);
        assert!(matches!(
            fs.read(FileHandle(99), 0, 1),
            Err(ScfsError::BadHandle { .. })
        ));
        assert!(matches!(
            fs.close(FileHandle(99)),
            Err(ScfsError::BadHandle { .. })
        ));
    }

    /// An agent over a WAN-latency simulated cloud, so background uploads
    /// take visible virtual time.
    fn wan_agent(config: ScfsConfig) -> ScfsAgent {
        let cloud = Arc::new(SimulatedCloud::new(
            cloud_store::providers::ProviderProfile::amazon_s3(),
            9,
        ));
        let storage = Arc::new(SingleCloudStorage::new(cloud));
        let coord: Arc<dyn CoordinationService> = Arc::new(ReplicatedCoordinator::test());
        ScfsAgent::mount("alice".into(), config, storage, Some(coord), 9).unwrap()
    }

    #[test]
    fn sync_waits_only_on_the_objects_token_and_reports_cloud_level() {
        let mut fs = wan_agent(ScfsConfig::test(Mode::NonBlocking));
        fs.write_file("/f", &vec![1u8; 300_000]).unwrap();
        let token = fs
            .upload_token("/f")
            .expect("upload pending after NB close");
        assert!(token.ready_at() > fs.now(), "commit is in the future");
        let h = fs.open("/f", OpenFlags::read_only()).unwrap();
        let level = fs.sync(h).unwrap();
        assert_eq!(level, DurabilityLevel::SingleCloud);
        assert!(fs.now() >= token.ready_at(), "sync waited for the commit");
        assert!(fs.upload_token("/f").is_none(), "token retired");
        fs.close(h).unwrap();
    }

    #[test]
    fn sync_commits_a_dirty_handle_without_closing_it() {
        let mut fs = test_agent(Mode::Blocking);
        let h = fs.open("/f", OpenFlags::create()).unwrap();
        fs.write(h, 0, &vec![7u8; 10_000]).unwrap();
        let level = fs.sync(h).unwrap();
        assert_eq!(level, DurabilityLevel::SingleCloud);
        assert_eq!(fs.stats().cloud_uploads, 1);
        // The handle stays open and writable; close commits only the delta.
        fs.write(h, 0, &vec![8u8; 10_000]).unwrap();
        fs.close(h).unwrap();
        assert_eq!(fs.stats().cloud_uploads, 2);
        assert_eq!(fs.read_file("/f").unwrap(), vec![8u8; 10_000]);
        let md = fs.stat("/f").unwrap();
        assert_eq!(md.version_count, 2);
    }

    #[test]
    fn copy_file_is_manifest_only_and_counts_dedup_hits() {
        let mut fs = test_agent(Mode::Blocking);
        // Four distinct 1 MiB chunks.
        let mut data = vec![0u8; 4 << 20];
        for (i, chunk) in data.chunks_mut(1 << 20).enumerate() {
            chunk.fill(i as u8 + 1);
        }
        fs.write_file("/src", &data).unwrap();
        let chunks_before = fs.stats().chunk_uploads;
        let dedup_before = fs.stats().dedup_hits_cross_file;
        fs.copy_file("/src", "/dst").unwrap();
        assert_eq!(
            fs.stats().chunk_uploads,
            chunks_before,
            "a manifest-only copy moves zero chunks"
        );
        assert_eq!(
            fs.stats().dedup_hits_cross_file,
            dedup_before + 4,
            "every referenced chunk is a cross-file dedup hit"
        );
        assert_eq!(fs.read_file("/dst").unwrap(), data);
        assert_eq!(fs.stat("/dst").unwrap().size, data.len() as u64);
        // The source stays intact and independently versioned.
        assert_eq!(fs.read_file("/src").unwrap(), data);
    }

    #[test]
    fn copy_file_copies_the_committed_version_like_the_default_path() {
        let mut fs = test_agent(Mode::Blocking);
        fs.write_file("/src", &vec![3u8; 8_000]).unwrap();
        let h = fs.open("/src", OpenFlags::read_write()).unwrap();
        fs.write(h, 0, &vec![4u8; 8_000]).unwrap();
        // A dirty buffer behind another handle is invisible to a fresh open,
        // so the copy carries the committed version — exactly what the
        // materializing trait default does.
        fs.copy_file("/src", "/dst").unwrap();
        assert_eq!(fs.read_file("/dst").unwrap(), vec![3u8; 8_000]);
        fs.close(h).unwrap();
        assert_eq!(fs.read_file("/src").unwrap(), vec![4u8; 8_000]);
        // A file without any committed version goes through the fallback.
        let h2 = fs.open("/fresh", OpenFlags::create()).unwrap();
        fs.write(h2, 0, b"in-memory only").unwrap();
        fs.close(h2).unwrap();
        fs.copy_file("/fresh", "/fresh-copy").unwrap();
        assert_eq!(fs.read_file("/fresh-copy").unwrap(), b"in-memory only");
    }

    #[test]
    fn close_backpressure_bounds_the_pending_upload_queue() {
        let mut config = ScfsConfig::test(Mode::NonBlocking);
        config.max_pending_uploads = 2;
        let mut fs = wan_agent(config);
        for i in 0..5 {
            fs.write_file(&format!("/f{i}"), &vec![i as u8; 400_000])
                .unwrap();
        }
        assert!(
            fs.stats().backpressure_stalls >= 1,
            "the third close must stall behind the two pending uploads"
        );
        assert!(fs.pending_uploads.len() <= 2);
    }

    #[test]
    fn rename_settles_pending_uploads_under_the_moved_prefix() {
        let mut fs = wan_agent(ScfsConfig::test(Mode::NonBlocking));
        fs.write_file("/dir/f", &vec![1u8; 300_000]).unwrap();
        fs.write_file("/dir/f", &vec![2u8; 300_000]).unwrap();
        assert!(fs.upload_token("/dir/f").is_some());
        fs.rename("/dir", "/new").unwrap();
        assert!(
            fs.upload_token("/dir/f").is_none(),
            "no stale pending record may survive under the old path"
        );
        // A fresh file at the old path is independent of the moved object.
        fs.write_file("/dir/f", b"fresh").unwrap();
        assert_eq!(fs.read_file("/dir/f").unwrap(), b"fresh");
        assert_eq!(fs.read_file("/new/f").unwrap(), vec![2u8; 300_000]);
    }

    #[test]
    fn gc_reclaims_files_unlinked_after_a_rename() {
        let cloud = Arc::new(SimulatedCloud::test("s3"));
        let storage = Arc::new(SingleCloudStorage::new(cloud));
        let coord: Arc<dyn CoordinationService> = Arc::new(ReplicatedCoordinator::test());
        let mut config = ScfsConfig::test(Mode::Blocking);
        config.gc.written_bytes_threshold = Bytes::new(50_000);
        config.gc.versions_to_keep = 1;
        let mut fs = ScfsAgent::mount("alice".into(), config, storage, Some(coord), 5).unwrap();
        fs.write_file("/dir/doomed", &vec![1u8; 10_000]).unwrap();
        fs.rename("/dir", "/moved").unwrap();
        fs.unlink("/moved/doomed").unwrap();
        for _ in 0..10 {
            fs.write_file("/big", &vec![7u8; 10_000]).unwrap();
        }
        let stats = fs.stats();
        assert!(stats.gc_runs >= 1);
        assert_eq!(
            stats.gc_errors, 0,
            "the tombstone delete must target the renamed path"
        );
        assert!(matches!(
            fs.stat("/moved/doomed"),
            Err(ScfsError::NotFound { .. })
        ));
    }

    #[test]
    fn setfacl_waits_only_on_its_own_objects_token() {
        let mut config = ScfsConfig::test(Mode::NonBlocking);
        // Sequential transfers keep /big's background upload far longer than
        // the foreground work between the two closes.
        config.max_parallel_transfers = 1;
        let mut fs = wan_agent(config);
        // 32 distinct chunks, so the upload cannot collapse through dedup.
        let mut big = vec![0u8; 32 << 20];
        for (i, chunk) in big.chunks_mut(1 << 20).enumerate() {
            chunk.fill(i as u8 + 1);
        }
        fs.write_file("/big", &big).unwrap();
        fs.write_file("/small", &vec![2u8; 10_000]).unwrap();
        let big = fs.upload_token("/big").expect("big upload pending");
        fs.setfacl("/small", &"bob".into(), Permission::Read)
            .unwrap();
        assert!(
            fs.now() < big.ready_at(),
            "the grant on /small must not drain /big's upload ({} vs {})",
            fs.now(),
            big.ready_at()
        );
        assert!(fs
            .getfacl("/small")
            .unwrap()
            .allows(&"bob".into(), Permission::Read));
    }
}
