//! SCFS: a Shared Cloud-backed File System.
//!
//! This crate is the core contribution of the reproduction: a library-level
//! implementation of the SCFS design (Bessani et al., USENIX ATC 2014). It
//! provides strongly consistent, POSIX-like file sharing on top of
//! eventually-consistent cloud object stores, following the paper's four
//! design ideas:
//!
//! * **Always write / avoid reading** — every close pushes the file to the
//!   cloud(s); reads are served from the local memory/disk caches validated
//!   against the metadata service ([`cache`], [`agent`]).
//! * **Modular coordination** — metadata and locks live in a fault-tolerant
//!   coordination service ([`metadata_service`], the `coord` crate).
//! * **Consistency anchors** — the strongly consistent coordination service
//!   anchors the consistency of the eventually-consistent clouds
//!   ([`anchor`]).
//! * **Private name spaces** — metadata of non-shared files is aggregated
//!   into one cloud object instead of one coordination tuple per file
//!   ([`pns`]).
//!
//! The file data itself goes either to a single cloud or to a DepSky
//! cloud-of-clouds ([`backend`]), moving through the parallel chunk
//! [`transfer`] engine (plan → bounded-parallel execution on forked virtual
//! clocks), and the agent supports the paper's three modes of operation
//! (blocking, non-blocking, non-sharing; [`config`]). Chunks live in a
//! global, refcounted, content-addressed namespace ([`chunkstore`]):
//! identical content moves once across versions, files and users, and the
//! garbage collector reclaims through a two-phase release journal that
//! retries failed deletes instead of leaking orphans.
//!
//! Chunk boundaries are either fixed-size strides or **content-defined**
//! (Gear/FastCDC rolling hash; [`config::ChunkingMode`],
//! [`types::CdcParams`]): under CDC, an insert in the middle of a file
//! re-cuts only the chunks around the edit and the shifted tail re-aligns
//! to identical hashes, so the dedup survives byte shifts that would force
//! fixed-size chunking to re-upload the whole tail. Both layouts sit
//! behind the same [`types::ChunkMap`] extent API, serialized as v1
//! (fixed, backward-compatible) or v2 (extent-table) manifests.
//!
//! Background work — non-blocking uploads, prefetch, garbage collection — is
//! modelled as first-class completion tokens
//! ([`sim_core::background::Pending`]) scheduled on per-object lanes of a
//! [`sim_core::background::BackgroundScheduler`]: uploads of different files
//! overlap in virtual time, commits of the same object serialize, and every
//! caller — `setfacl`, reopens, [`fs::FileSystem::sync`], even a second
//! mount of the same account ([`agent::ScfsAgent::upload_token`]) — waits
//! precisely on *one object's* token instead of a global drain horizon.
//! [`fs::FileSystem::sync`] surfaces the durability promotion of Table 1
//! ([`durability`]): it returns only when the object's data has reached the
//! backend's cloud level.
//!
//! # Quick start
//!
//! The async session API, end to end: a non-blocking close returns at local
//! durability (level 1), the surfaced token tells everyone exactly when the
//! cloud commit lands, and `sync` promotes on demand (level 2/3).
//!
//! ```
//! use std::sync::Arc;
//! use cloud_store::providers::ProviderProfile;
//! use cloud_store::sim_cloud::SimulatedCloud;
//! use coord::replication::ReplicatedCoordinator;
//! use coord::service::CoordinationService;
//! use scfs::agent::ScfsAgent;
//! use scfs::backend::SingleCloudStorage;
//! use scfs::config::{Mode, ScfsConfig};
//! use scfs::durability::DurabilityLevel;
//! use scfs::fs::FileSystem;
//! use scfs::types::OpenFlags;
//!
//! // A WAN-latency simulated cloud: uploads take real virtual time.
//! let cloud = Arc::new(SimulatedCloud::new(ProviderProfile::amazon_s3(), 42));
//! let storage = Arc::new(SingleCloudStorage::new(cloud));
//! let coordinator: Arc<dyn CoordinationService> = Arc::new(ReplicatedCoordinator::test());
//! let mut fs = ScfsAgent::mount(
//!     "alice".into(),
//!     ScfsConfig::test(Mode::NonBlocking),
//!     storage,
//!     Some(coordinator),
//!     42,
//! ).unwrap();
//!
//! // The close returns after local persistence; the upload is a background
//! // job on the file's lane, surfaced as a completion token.
//! fs.write_file("/docs/hello.txt", b"hello cloud-of-clouds").unwrap();
//! let token = fs.upload_token("/docs/hello.txt").expect("upload in flight");
//!
//! // This client reads its own writes immediately...
//! assert_eq!(fs.read_file("/docs/hello.txt").unwrap(), b"hello cloud-of-clouds");
//!
//! // ...and `sync` waits on exactly this object's token, promoting the
//! // data to cloud durability (Table 1, level 2 on a single cloud).
//! let h = fs.open("/docs/hello.txt", OpenFlags::read_only()).unwrap();
//! assert_eq!(fs.sync(h).unwrap(), DurabilityLevel::SingleCloud);
//! assert!(fs.now() >= token.ready_at());
//! fs.close(h).unwrap();
//! ```

pub mod agent;
pub mod anchor;
pub mod backend;
pub mod cache;
pub mod chunkstore;
pub mod config;
pub mod cost;
pub mod durability;
pub mod error;
pub mod fs;
pub mod invariant;
pub mod metadata_service;
pub mod pns;
pub mod transfer;
pub mod types;

pub use agent::{AgentStats, ScfsAgent};
pub use backend::{CloudOfCloudsStorage, FileStorage, SingleCloudStorage, WriteOutcome};
pub use chunkstore::{BlobAudit, ChunkStore, JournalOpts, KeyStyle, ReplayReport};
pub use config::{ChunkingMode, GcConfig, Mode, ScfsConfig};
pub use cost::{CostBackend, CostModel};
pub use durability::{DurabilityLevel, SysCall};
pub use error::ScfsError;
pub use fs::FileSystem;
pub use invariant::InvariantViolation;
pub use sim_core::background::{BackgroundScheduler, Pending};
pub use transfer::{TransferOptions, TransferPlan};
pub use types::{CdcParams, ChunkMap, FileHandle, FileMetadata, FileType, OpenFlags};
