//! Private Name Spaces (paper §2.7).
//!
//! Most files in a shared file system are never actually shared (the paper
//! cites traces where only ~5% are). SCFS therefore keeps the metadata of all
//! *non-shared* files of a user out of the coordination service: they are
//! grouped in a single Private Name Space (PNS) object, held in memory by the
//! agent and persisted as one object in the cloud storage. Only a small PNS
//! tuple (user name + reference to that object) lives in the coordination
//! service. This cuts both the storage footprint of the coordination service
//! and, more importantly, the number of accesses it has to serve.

use std::collections::BTreeMap;

use depsky::wire::{DecodeError, Reader, Writer};

use crate::types::FileMetadata;

/// The in-memory private name space of one user.
#[derive(Debug, Clone, Default)]
pub struct PrivateNameSpace {
    entries: BTreeMap<String, FileMetadata>,
    dirty: bool,
}

impl PrivateNameSpace {
    /// Creates an empty name space.
    pub fn new() -> Self {
        PrivateNameSpace::default()
    }

    /// Number of private files tracked.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the name space is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether the name space has changes not yet persisted to the cloud.
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// Marks the name space as persisted.
    pub fn mark_clean(&mut self) {
        self.dirty = false;
    }

    /// Looks up the metadata of a private file.
    pub fn get(&self, path: &str) -> Option<&FileMetadata> {
        self.entries.get(path)
    }

    /// Inserts or replaces the metadata of a private file.
    pub fn insert(&mut self, metadata: FileMetadata) {
        self.entries.insert(metadata.path.clone(), metadata);
        self.dirty = true;
    }

    /// Removes a private file's metadata (e.g. when it becomes shared and
    /// moves to the coordination service, or when it is unlinked).
    pub fn remove(&mut self, path: &str) -> Option<FileMetadata> {
        let removed = self.entries.remove(path);
        if removed.is_some() {
            self.dirty = true;
        }
        removed
    }

    /// Lists the direct children of `dir`.
    pub fn children_of(&self, dir: &str) -> Vec<String> {
        let prefix = if dir == "/" {
            "/".to_string()
        } else {
            format!("{dir}/")
        };
        self.entries
            .keys()
            .filter(|p| {
                p.starts_with(&prefix)
                    && !p[prefix.len()..].contains('/')
                    && !p[prefix.len()..].is_empty()
            })
            .cloned()
            .collect()
    }

    /// Renames every entry under `from` to be under `to`.
    pub fn rename_prefix(&mut self, from: &str, to: &str) -> usize {
        let affected: Vec<String> = self
            .entries
            .keys()
            .filter(|k| k.as_str() == from || k.starts_with(&format!("{from}/")))
            .cloned()
            .collect();
        for key in &affected {
            if let Some(mut md) = self.entries.remove(key) {
                let new_key = format!("{to}{}", &key[from.len()..]);
                md.path = new_key.clone();
                self.entries.insert(new_key, md);
            }
        }
        if !affected.is_empty() {
            self.dirty = true;
        }
        affected.len()
    }

    /// Iterates over all private files.
    pub fn iter(&self) -> impl Iterator<Item = &FileMetadata> {
        self.entries.values()
    }

    /// Serializes the whole name space into the single object stored in the
    /// cloud (paper §2.7: "a copy of the serialized metadata of all private
    /// files of the user").
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u64(self.entries.len() as u64);
        for md in self.entries.values() {
            w.put_bytes(&md.encode());
        }
        w.finish()
    }

    /// Deserializes a name space object.
    pub fn decode(buf: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(buf);
        let count = r.get_u64()? as usize;
        let mut entries = BTreeMap::new();
        for _ in 0..count {
            let bytes = r.get_bytes()?;
            let md = FileMetadata::decode(&bytes)?;
            entries.insert(md.path.clone(), md);
        }
        Ok(PrivateNameSpace {
            entries,
            dirty: false,
        })
    }

    /// Estimated coordination-service savings: with a PNS, `len()` files need
    /// one tuple instead of `len()` tuples (the §2.7 back-of-envelope).
    pub fn coordination_tuples_saved(&self) -> usize {
        self.len().saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloud_store::types::AccountId;
    use sim_core::time::SimInstant;

    fn md(path: &str) -> FileMetadata {
        FileMetadata::new_file(
            path,
            AccountId::new("alice"),
            format!("id-{path}"),
            SimInstant::EPOCH,
        )
    }

    #[test]
    fn insert_get_remove() {
        let mut pns = PrivateNameSpace::new();
        assert!(pns.is_empty());
        pns.insert(md("/docs/a.txt"));
        assert_eq!(pns.len(), 1);
        assert!(pns.is_dirty());
        assert!(pns.get("/docs/a.txt").is_some());
        assert!(pns.remove("/docs/a.txt").is_some());
        assert!(pns.get("/docs/a.txt").is_none());
        assert!(pns.remove("/docs/a.txt").is_none());
    }

    #[test]
    fn encode_decode_round_trip() {
        let mut pns = PrivateNameSpace::new();
        for i in 0..20 {
            pns.insert(md(&format!("/files/f{i}")));
        }
        let decoded = PrivateNameSpace::decode(&pns.encode()).unwrap();
        assert_eq!(decoded.len(), 20);
        assert!(!decoded.is_dirty());
        assert!(decoded.get("/files/f7").is_some());
    }

    #[test]
    fn children_listing() {
        let mut pns = PrivateNameSpace::new();
        pns.insert(md("/docs/a"));
        pns.insert(md("/docs/b"));
        pns.insert(md("/docs/sub/c"));
        pns.insert(md("/other"));
        let mut kids = pns.children_of("/docs");
        kids.sort();
        assert_eq!(kids, vec!["/docs/a".to_string(), "/docs/b".to_string()]);
        assert_eq!(pns.children_of("/").len(), 1);
    }

    #[test]
    fn rename_prefix_moves_entries() {
        let mut pns = PrivateNameSpace::new();
        pns.insert(md("/dir/a"));
        pns.insert(md("/dir/b"));
        pns.insert(md("/keep/c"));
        let moved = pns.rename_prefix("/dir", "/renamed");
        assert_eq!(moved, 2);
        assert!(pns.get("/renamed/a").is_some());
        assert_eq!(pns.get("/renamed/a").unwrap().path, "/renamed/a");
        assert!(pns.get("/dir/a").is_none());
        assert!(pns.get("/keep/c").is_some());
    }

    #[test]
    fn dirty_tracking_and_savings() {
        let mut pns = PrivateNameSpace::new();
        pns.insert(md("/a"));
        pns.insert(md("/b"));
        pns.mark_clean();
        assert!(!pns.is_dirty());
        pns.insert(md("/c"));
        assert!(pns.is_dirty());
        assert_eq!(pns.coordination_tuples_saved(), 2);
    }
}
