//! SCFS agent configuration: operation modes, cache sizes, garbage
//! collection policy and the knobs varied in the paper's §4.4.

use sim_core::latency::LatencyModel;
use sim_core::time::SimDuration;
use sim_core::units::Bytes;

pub use crate::cache::CacheConfig;
use crate::cache::PolicyKind;
use crate::types::{CdcParams, ChunkMap};

/// How the data path splits file contents into chunks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkingMode {
    /// Fixed-size chunks of [`ScfsConfig::chunk_size`] bytes. Serializes as
    /// v1 manifests (the pre-extent format, so committed registries keep
    /// working), but an insert in the middle of a file shifts every
    /// subsequent boundary and re-uploads the whole tail.
    Fixed,
    /// Content-defined boundaries (Gear/FastCDC rolling hash) with the given
    /// min/avg/max knobs: an insert or delete moves only O(edit) chunks
    /// because the shifted tail re-aligns to identical chunk hashes.
    /// Serializes as v2 manifests carrying the per-chunk extent table.
    Cdc(CdcParams),
}

/// The three modes of operation supported by the prototype (paper §3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// `close` blocks until the file data is in the cloud(s) and the metadata
    /// and lock updates are committed (full consistency-on-close).
    Blocking,
    /// `close` returns once the data is safely on the local disk and queued
    /// for upload; the metadata update and unlock happen when the background
    /// upload completes, so mutual exclusion and consistency-on-close for
    /// *observers* are preserved, at reduced durability for the writer.
    NonBlocking,
    /// Single-user mode: no coordination service at all, all metadata lives
    /// in a private name space, uploads happen in the background (a design
    /// similar to S3QL but optionally cloud-of-clouds backed).
    NonSharing,
}

impl Mode {
    /// Short label used by the experiment harnesses ("B", "NB", "NS").
    pub fn label(&self) -> &'static str {
        match self {
            Mode::Blocking => "B",
            Mode::NonBlocking => "NB",
            Mode::NonSharing => "NS",
        }
    }

    /// Whether this mode uses the coordination service.
    pub fn uses_coordination(&self) -> bool {
        !matches!(self, Mode::NonSharing)
    }

    /// Whether `close` waits for the cloud upload.
    pub fn blocking_close(&self) -> bool {
        matches!(self, Mode::Blocking)
    }
}

/// Garbage-collection policy (paper §2.5.3): once an agent has written more
/// than `written_bytes_threshold`, a background collector releases all but
/// the newest `versions_to_keep` versions of each file it owns, as well as
/// the files the user removed. Physical reclamation goes through the
/// refcounted chunk store's two-phase release journal
/// ([`crate::chunkstore`]): the collector appends release intents, then
/// replays the journal to delete blobs whose reference count hit zero —
/// failed deletes stay pending and are retried in later cycles instead of
/// leaking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GcConfig {
    /// Number of written bytes (W) that triggers a collection cycle.
    pub written_bytes_threshold: Bytes,
    /// Number of versions (V) to keep per file.
    pub versions_to_keep: usize,
    /// Whether the collector runs at all.
    pub enabled: bool,
    /// Maximum number of pending release-journal entries the collector
    /// replays per cycle (0 = all). Bounding the batch spreads the deletion
    /// work of a huge prune over several cycles.
    pub journal_replay_batch: usize,
    /// Number of applied release-journal entries retained for inspection
    /// (diagnostics and tests; older entries are compacted away).
    pub journal_keep_applied: usize,
}

impl Default for GcConfig {
    fn default() -> Self {
        GcConfig {
            written_bytes_threshold: Bytes::mib(256),
            versions_to_keep: 4,
            enabled: true,
            journal_replay_batch: 0,
            journal_keep_applied: 64,
        }
    }
}

impl GcConfig {
    /// The journal knobs in the form the storage backend consumes.
    pub fn journal_opts(&self) -> crate::chunkstore::JournalOpts {
        crate::chunkstore::JournalOpts {
            replay_batch: self.journal_replay_batch,
            keep_applied: self.journal_keep_applied,
        }
    }
}

/// Full SCFS agent configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ScfsConfig {
    /// Operation mode.
    pub mode: Mode,
    /// Expiration time of the short-lived metadata cache (paper §2.5.1 and
    /// Figure 10(a); 500 ms in all headline experiments).
    pub metadata_cache_expiry: SimDuration,
    /// The two-level chunk cache: per-tier replacement policies and
    /// capacities ([`CacheConfig`]).
    pub cache: CacheConfig,
    /// Whether private name spaces are used for non-shared files (§2.7,
    /// Figure 10(b)). The headline experiments disable PNS (worst case).
    pub private_name_spaces: bool,
    /// Chunk size of the content-addressed data path: the fixed chunk size
    /// under [`ChunkingMode::Fixed`] (and the conventional reference point
    /// for the CDC knobs). Only dirty chunks are uploaded on close (missing
    /// chunks downloaded on read).
    pub chunk_size: Bytes,
    /// How file contents are cut into chunks: fixed-size strides or
    /// content-defined (shift-resistant) boundaries.
    pub chunking: ChunkingMode,
    /// Maximum number of chunk transfers the engine keeps in flight at once:
    /// a dirty close or a cold range read moves its chunks in waves of this
    /// many parallel transfers, so a 16-chunk upload costs
    /// ~⌈16 / max_parallel_transfers⌉ chunk latencies of wall-clock.
    pub max_parallel_transfers: usize,
    /// Number of upcoming chunks the sequential-read prefetcher schedules on
    /// the background clock once a handle shows a sequential read pattern
    /// (0 disables prefetch).
    pub prefetch_chunks: usize,
    /// Maximum number of background version commits (non-blocking closes)
    /// in flight at once. A `close` that would exceed the bound blocks until
    /// the earliest pending upload completes — explicit backpressure instead
    /// of an unbounded implicit queue (counted in
    /// [`crate::agent::AgentStats::backpressure_stalls`]).
    pub max_pending_uploads: usize,
    /// Garbage-collection policy.
    pub gc: GcConfig,
    /// Lease duration of file write locks.
    pub lock_lease: SimDuration,
    /// Per-system-call dispatch overhead (the FUSE-J user-level file system
    /// overhead the paper controls for with its LocalFS baseline).
    pub syscall_overhead: LatencyModel,
    /// Maximum number of retries of the consistency-anchor read loop before
    /// giving up, and the back-off between retries.
    pub anchor_read_retries: usize,
    /// Back-off between consistency-anchor read retries.
    pub anchor_retry_backoff: SimDuration,
    /// Number of shards the coordination plane partitions the metadata
    /// namespace over (`coord::sharded::ShardTopology`). `1` keeps the
    /// paper's single consistency-anchor deployment; larger values route
    /// metadata tuples across that many ABD register groups by directory
    /// hash, scaling aggregate metadata throughput near-linearly.
    pub metadata_shards: usize,
    /// Which placement policy the cloud-of-clouds backend uses to choose
    /// clouds per DepSky operation when deployed over a heterogeneous
    /// provider matrix (`placement::PolicyKind`). The paper's fixed layout
    /// is [`placement::PolicyKind::AllClouds`]; the harness building the
    /// backend (`workloads::setup`) consumes this knob — it has no effect
    /// on a plain four-cloud deployment.
    pub placement: placement::PolicyKind,
}

impl ScfsConfig {
    /// The configuration used by the paper's headline experiments: blocking
    /// mode, 500 ms metadata cache, no PNS.
    pub fn paper_default(mode: Mode) -> Self {
        ScfsConfig {
            mode,
            metadata_cache_expiry: SimDuration::from_millis(500),
            cache: CacheConfig::default(),
            private_name_spaces: false,
            chunk_size: Bytes::new(crate::types::DEFAULT_CHUNK_SIZE as u64),
            chunking: ChunkingMode::Fixed,
            max_parallel_transfers: crate::transfer::DEFAULT_MAX_PARALLEL,
            prefetch_chunks: 2,
            max_pending_uploads: 64,
            gc: GcConfig::default(),
            lock_lease: SimDuration::from_secs(120),
            syscall_overhead: LatencyModel::Uniform {
                lo_millis: 0.11,
                hi_millis: 0.16,
            },
            anchor_read_retries: 50,
            anchor_retry_backoff: SimDuration::from_millis(200),
            metadata_shards: 1,
            placement: placement::PolicyKind::AllClouds,
        }
    }

    /// Partitions the metadata namespace over `shards` register groups.
    pub fn with_metadata_shards(mut self, shards: usize) -> Self {
        self.metadata_shards = shards.max(1);
        self
    }

    /// Selects the placement policy a matrix-backed cloud-of-clouds
    /// deployment uses to pick clouds per operation.
    pub fn with_placement_policy(mut self, policy: placement::PolicyKind) -> Self {
        self.placement = policy;
        self
    }

    /// A configuration with no syscall overhead and no caches expiring, for
    /// functional unit tests.
    pub fn test(mode: Mode) -> Self {
        ScfsConfig {
            syscall_overhead: LatencyModel::zero(),
            ..ScfsConfig::paper_default(mode)
        }
    }

    /// Replaces the cache tiers' replacement policies.
    pub fn with_cache_policies(mut self, memory: PolicyKind, disk: PolicyKind) -> Self {
        self.cache = self.cache.with_policies(memory, disk);
        self
    }

    /// Replaces the cache tiers' capacities.
    pub fn with_cache_capacities(mut self, memory: Bytes, disk: Bytes) -> Self {
        self.cache = self.cache.with_capacities(memory, disk);
        self
    }

    /// Switches to content-defined chunking with [`ScfsConfig::chunk_size`]
    /// as the target average (min `avg/4`, max `4*avg`).
    pub fn with_cdc(mut self) -> Self {
        self.chunking = ChunkingMode::Cdc(CdcParams::with_avg(self.chunk_size.get() as usize));
        self
    }

    /// Cuts `data` into the chunk map this configuration's chunking mode
    /// prescribes — the one seam every writer (close, fsync, sync) chunks
    /// through.
    pub fn chunk_map(&self, data: &[u8]) -> ChunkMap {
        match self.chunking {
            ChunkingMode::Fixed => ChunkMap::build(data, self.chunk_size.get() as usize),
            ChunkingMode::Cdc(params) => ChunkMap::build_cdc(data, &params),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_labels_and_properties() {
        assert_eq!(Mode::Blocking.label(), "B");
        assert_eq!(Mode::NonBlocking.label(), "NB");
        assert_eq!(Mode::NonSharing.label(), "NS");
        assert!(Mode::Blocking.uses_coordination());
        assert!(Mode::NonBlocking.uses_coordination());
        assert!(!Mode::NonSharing.uses_coordination());
        assert!(Mode::Blocking.blocking_close());
        assert!(!Mode::NonBlocking.blocking_close());
    }

    #[test]
    fn paper_default_matches_section_4_1() {
        let c = ScfsConfig::paper_default(Mode::Blocking);
        assert_eq!(c.metadata_cache_expiry, SimDuration::from_millis(500));
        assert!(!c.private_name_spaces);
        assert_eq!(c.gc.versions_to_keep, 4);
        assert_eq!(c.cache.memory_policy, PolicyKind::Lru);
        assert_eq!(c.cache.disk_policy, PolicyKind::Lru);
        assert_eq!(c.cache.memory_capacity, Bytes::mib(512));
        assert_eq!(c.cache.disk_capacity, Bytes::gib(16));
    }

    #[test]
    fn cache_builders_override_policies_and_capacities() {
        let c = ScfsConfig::test(Mode::Blocking)
            .with_cache_policies(PolicyKind::TinyLfu, PolicyKind::Gdsf)
            .with_cache_capacities(Bytes::mib(64), Bytes::gib(1));
        assert_eq!(c.cache.memory_policy, PolicyKind::TinyLfu);
        assert_eq!(c.cache.disk_policy, PolicyKind::Gdsf);
        assert_eq!(c.cache.memory_capacity, Bytes::mib(64));
        assert_eq!(c.cache.disk_capacity, Bytes::gib(1));
    }

    #[test]
    fn default_chunk_size_is_1_mib() {
        let c = ScfsConfig::paper_default(Mode::Blocking);
        assert_eq!(c.chunk_size, Bytes::mib(1));
    }

    #[test]
    fn transfer_knobs_default_to_parallel_with_prefetch() {
        let c = ScfsConfig::paper_default(Mode::Blocking);
        assert_eq!(c.max_parallel_transfers, 4);
        assert_eq!(c.prefetch_chunks, 2);
        assert!(c.max_pending_uploads >= 1);
    }

    #[test]
    fn chunking_defaults_to_fixed_and_with_cdc_derives_knobs() {
        let c = ScfsConfig::paper_default(Mode::Blocking);
        assert_eq!(c.chunking, ChunkingMode::Fixed);
        let data = vec![1u8; 3 << 20];
        let fixed = c.chunk_map(&data);
        assert_eq!(fixed.chunk_count(), 3, "1 MiB fixed chunks");

        let cdc = c.clone().with_cdc();
        match cdc.chunking {
            ChunkingMode::Cdc(p) => {
                assert_eq!(p.avg_size, 1 << 20);
                assert_eq!(p.min_size, 1 << 18);
                assert_eq!(p.max_size, 1 << 22);
            }
            other => panic!("expected CDC chunking, got {other:?}"),
        }
        // Both modes chunk through the same seam and cover the same bytes.
        let map = cdc.chunk_map(&data);
        assert_eq!(map.file_len(), data.len() as u64);
        assert!(map.chunk_count() >= 1);
    }

    #[test]
    fn gc_defaults_are_sane() {
        let gc = GcConfig::default();
        assert!(gc.enabled);
        assert!(gc.written_bytes_threshold.get() > 0);
        assert!(gc.versions_to_keep >= 1);
        assert_eq!(gc.journal_replay_batch, 0, "default replays everything");
        assert!(gc.journal_keep_applied > 0);
        let opts = gc.journal_opts();
        assert_eq!(opts.replay_batch, gc.journal_replay_batch);
        assert_eq!(opts.keep_applied, gc.journal_keep_applied);
    }
}
