//! Quickstart: mount an SCFS agent on a simulated single-cloud (AWS) backend,
//! write a file, read it back and inspect what it cost.
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;

use scfs_repro::cloud_store::providers::ProviderProfile;
use scfs_repro::cloud_store::sim_cloud::SimulatedCloud;
use scfs_repro::coord::replication::{ReplicatedCoordinator, ReplicationConfig};
use scfs_repro::coord::service::CoordinationService;
use scfs_repro::scfs::agent::ScfsAgent;
use scfs_repro::scfs::backend::SingleCloudStorage;
use scfs_repro::scfs::config::{Mode, ScfsConfig};
use scfs_repro::scfs::fs::FileSystem;

fn main() {
    // 1. The backend: one simulated Amazon S3 (WAN latency, eventual
    //    consistency, 2014 price book) and one coordination-service instance
    //    in EC2 — the paper's "AWS backend".
    let cloud = Arc::new(SimulatedCloud::new(ProviderProfile::amazon_s3(), 1));
    let storage = Arc::new(SingleCloudStorage::new(cloud.clone()));
    let coordinator: Arc<dyn CoordinationService> = Arc::new(
        ReplicatedCoordinator::new(ReplicationConfig::aws_single_ec2(), 1)
            .expect("aws_single_ec2 is a consistent configuration"),
    );

    // 2. Mount the agent in blocking mode (full consistency-on-close).
    let mut fs = ScfsAgent::mount(
        "alice".into(),
        ScfsConfig::paper_default(Mode::Blocking),
        storage,
        Some(coordinator),
        42,
    )
    .expect("mount SCFS");

    // 3. Use it like a file system.
    fs.mkdir("/docs").expect("mkdir");
    fs.write_file("/docs/notes.txt", b"SCFS stores whole files in the cloud")
        .expect("write");
    let back = fs.read_file("/docs/notes.txt").expect("read");
    println!(
        "read back {} bytes: {:?}",
        back.len(),
        String::from_utf8_lossy(&back)
    );

    let md = fs.stat("/docs/notes.txt").expect("stat");
    println!(
        "file size {}B, version {}, hash present: {}",
        md.size,
        md.version_count,
        md.version_hash.is_some()
    );

    // 4. What did it cost, and how long did it take (in virtual time)?
    println!("virtual time elapsed: {}", fs.now());
    println!(
        "cloud charges for alice so far: {}",
        cloud.ledger().total_for(&"alice".into())
    );
    println!("agent stats: {:?}", fs.stats());
}
