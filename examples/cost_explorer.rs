//! Explore the SCFS cost model: what the coordination service costs per day,
//! what a read/write costs per operation, and what storing a file costs per
//! day — the analyses behind Figure 11 of the paper — plus a fleet-scale
//! placement comparison: what a user-month costs under each placement
//! policy over the heterogeneous provider matrix, healthy and degraded.
//!
//! Run with: `cargo run --example cost_explorer`

use scfs_repro::cloud_store::pricing::VmInstanceSize;
use scfs_repro::cloud_store::providers::{ProviderProfile, ProviderSet};
use scfs_repro::coord::deployment::CoordDeployment;
use scfs_repro::placement::PolicyKind;
use scfs_repro::scfs::config::{Mode, ScfsConfig};
use scfs_repro::scfs::cost::{CostBackend, CostModel};
use scfs_repro::sim_core::fault::FaultPlan;
use scfs_repro::sim_core::time::SimDuration;
use scfs_repro::sim_core::units::{Bytes, MicroDollars};
use scfs_repro::workloads::costs::{figure11a, figure11b, figure11c};
use scfs_repro::workloads::fleet::{run_fleet_in, FleetConfig};
use scfs_repro::workloads::setup::{Backend, MatrixEnv};

/// Runs a small zipfian fleet over the matrix with one placement policy and
/// returns dollars per user-month: operation/traffic ledgers scaled to 30
/// days plus a month of storage rent, split over the mounts.
fn fleet_dollars_per_user_month(
    profiles: Vec<ProviderProfile>,
    policy: PolicyKind,
    flaky_faults: bool,
) -> f64 {
    let mut cfg = FleetConfig::smoke(Backend::CloudOfClouds);
    cfg.mounts = 12;
    cfg.teams = 3;
    cfg.files_per_team = 8;
    cfg.ops_per_mount = 8;
    cfg.mean_think = SimDuration::from_secs(20);
    cfg.scfs = ScfsConfig::test(Mode::Blocking)
        .with_cache_capacities(Bytes::new(1), Bytes::new(1))
        .with_placement_policy(policy);
    cfg.seed = 0xC057;
    let menv = MatrixEnv::coc_matrix(profiles, cfg.scfs.placement, 3, 2, cfg.mode, cfg.seed);
    if flaky_faults {
        menv.clouds[2].set_fault_plan(FaultPlan::flaky(0.04), cfg.seed);
    }
    let report = run_fleet_in(&menv.env, &cfg);
    let month_factor = 30.0 * 86_400.0 / report.makespan.as_secs_f64().max(1.0);
    let ops: f64 = menv
        .clouds
        .iter()
        .map(|c| c.ledger().grand_total().as_dollars())
        .sum();
    let rent: f64 = menv
        .clouds
        .iter()
        .map(|c| {
            c.profile()
                .prices
                .storage_cost(c.stored_bytes(), 30.0)
                .as_dollars()
        })
        .sum();
    (ops * month_factor + rent) / cfg.mounts as f64
}

fn main() {
    println!("{}", figure11a().render());
    println!("{}", figure11b().render());
    println!("{}", figure11c().render());

    // How many users does it take to fund the CoC coordination service at
    // one dollar per month each?
    let coc = CoordDeployment::cloud_of_clouds(VmInstanceSize::ExtraLarge);
    println!(
        "CoC coordination service (Extra Large replicas): ${:.2}/month, funded by {} users at $1/month",
        coc.cost_per_month().as_dollars(),
        coc.users_for_budget(MicroDollars::from_dollars(1.0))
    );

    // A typical personal workload: 2 000 files of 1 MiB, re-read 10% of them
    // per day without local caches, re-written 5% per day.
    let coc_model = CostModel::new(CostBackend::CloudOfClouds);
    let aws_model = CostModel::new(CostBackend::Aws);
    let files = 2_000.0;
    let size = Bytes::mib(1);
    for (label, model) in [("AWS", &aws_model), ("CoC", &coc_model)] {
        let storage = model.storage_cost_per_day(size) * files;
        let reads = model.read_cost(size) * (files * 0.10);
        let writes = model.write_cost(size) * (files * 0.05);
        let daily = storage + reads + writes;
        println!(
            "{label}: storage {:.0}µ$ + reads {:.0}µ$ + writes {:.0}µ$  =>  ${:.4}/day",
            storage.get(),
            reads.get(),
            writes.get(),
            daily.as_dollars()
        );
    }

    // Fleet-scale placement comparison over the heterogeneous matrix: the
    // same zipfian fleet under each policy, healthy and degraded (one cloud
    // 10x slower with a flaky regional store dropping ~4% of requests; one
    // block-holding cloud 10x pricier).
    println!("\nPlacement over the 7-provider matrix ($ per user-month, 12-mount fleet):");
    let policies = [
        PolicyKind::AllClouds,
        PolicyKind::CheapestQuorum { slo_millis: 2_500 },
        PolicyKind::FastestRead,
    ];
    let sweeps = [
        ("healthy", 0, false),
        ("slow s3 (10x latency, flaky faults)", 1, true),
        ("pricey flaky (10x prices)", 2, false),
    ];
    for (label, sweep, faults) in sweeps {
        let mut profiles = ProviderSet::heterogeneous_matrix();
        match sweep {
            1 => profiles[1] = profiles[1].with_latency_scaled(10.0),
            2 => profiles[2] = profiles[2].with_prices_scaled(10.0),
            _ => {}
        }
        println!("  {label}:");
        for policy in policies {
            let dollars = fleet_dollars_per_user_month(profiles.clone(), policy, faults);
            println!("    {:<16} ${dollars:.4}/user/month", policy.label());
        }
    }
}
