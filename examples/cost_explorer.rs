//! Explore the SCFS cost model: what the coordination service costs per day,
//! what a read/write costs per operation, and what storing a file costs per
//! day — the analyses behind Figure 11 of the paper.
//!
//! Run with: `cargo run --example cost_explorer`

use scfs_repro::cloud_store::pricing::VmInstanceSize;
use scfs_repro::coord::deployment::CoordDeployment;
use scfs_repro::scfs::cost::{CostBackend, CostModel};
use scfs_repro::sim_core::units::{Bytes, MicroDollars};
use scfs_repro::workloads::costs::{figure11a, figure11b, figure11c};

fn main() {
    println!("{}", figure11a().render());
    println!("{}", figure11b().render());
    println!("{}", figure11c().render());

    // How many users does it take to fund the CoC coordination service at
    // one dollar per month each?
    let coc = CoordDeployment::cloud_of_clouds(VmInstanceSize::ExtraLarge);
    println!(
        "CoC coordination service (Extra Large replicas): ${:.2}/month, funded by {} users at $1/month",
        coc.cost_per_month().as_dollars(),
        coc.users_for_budget(MicroDollars::from_dollars(1.0))
    );

    // A typical personal workload: 2 000 files of 1 MiB, re-read 10% of them
    // per day without local caches, re-written 5% per day.
    let coc_model = CostModel::new(CostBackend::CloudOfClouds);
    let aws_model = CostModel::new(CostBackend::Aws);
    let files = 2_000.0;
    let size = Bytes::mib(1);
    for (label, model) in [("AWS", &aws_model), ("CoC", &coc_model)] {
        let storage = model.storage_cost_per_day(size) * files;
        let reads = model.read_cost(size) * (files * 0.10);
        let writes = model.write_cost(size) * (files * 0.05);
        let daily = storage + reads + writes;
        println!(
            "{label}: storage {:.0}µ$ + reads {:.0}µ$ + writes {:.0}µ$  =>  ${:.4}/day",
            storage.get(),
            reads.get(),
            writes.get(),
            daily.as_dollars()
        );
    }
}
