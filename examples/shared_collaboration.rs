//! Controlled file sharing between two users (the paper's collaboration
//! use case): Alice creates a report, grants Bob access with `setfacl`, Bob
//! edits it, and the write lock prevents conflicting concurrent updates.
//!
//! Run with: `cargo run --example shared_collaboration`

use scfs_repro::cloud_store::types::Permission;
use scfs_repro::scfs::config::{Mode, ScfsConfig};
use scfs_repro::scfs::fs::FileSystem;
use scfs_repro::scfs::types::OpenFlags;
use scfs_repro::sim_core::time::SimDuration;
use scfs_repro::workloads::setup::{Backend, SharedScfsEnv};

fn main() {
    // One shared environment (cloud-of-clouds backend + BFT coordination
    // service), two agents mounted by two different users.
    let env = SharedScfsEnv::new(Backend::CloudOfClouds, Mode::Blocking, 7);
    let mut alice = env.mount("alice", ScfsConfig::paper_default(Mode::Blocking), 1);
    let mut bob = env.mount("bob", ScfsConfig::paper_default(Mode::Blocking), 2);

    // Alice writes the report and shares it with Bob.
    alice
        .write_file("/shared/q2-report.odt", b"Q2 draft v1 (alice)")
        .expect("alice writes");
    alice
        .setfacl("/shared/q2-report.odt", &"bob".into(), Permission::Write)
        .expect("alice grants bob write access");
    println!("[{}] alice shared the report", alice.now());

    // Bob catches up in virtual time and opens the shared report.
    bob.sleep(SimDuration::from_secs(5).max(alice.now().duration_since(bob.now())));
    let contents = bob.read_file("/shared/q2-report.odt").expect("bob reads");
    println!(
        "[{}] bob read: {}",
        bob.now(),
        String::from_utf8_lossy(&contents)
    );

    // Bob edits it; while his handle is open for writing Alice cannot grab
    // the write lock (write-write conflicts are prevented).
    let h = bob
        .open("/shared/q2-report.odt", OpenFlags::read_write())
        .expect("bob opens for writing");
    bob.write(h, 0, b"Q2 draft v2 (bob)  ").expect("bob edits");

    alice.sleep(SimDuration::from_secs(1).max(bob.now().duration_since(alice.now())));
    match alice.open("/shared/q2-report.odt", OpenFlags::read_write()) {
        Err(e) => println!(
            "[{}] alice cannot write while bob holds the lock: {e}",
            alice.now()
        ),
        Ok(_) => println!("unexpected: alice acquired the lock"),
    }

    bob.close(h).expect("bob closes (consistency-on-close)");
    println!(
        "[{}] bob closed the file; his update is now in the clouds",
        bob.now()
    );

    // Consistency-on-close: Alice now sees Bob's version.
    alice.sleep(SimDuration::from_secs(2).max(bob.now().duration_since(alice.now())));
    let latest = alice
        .read_file("/shared/q2-report.odt")
        .expect("alice re-reads");
    println!(
        "[{}] alice reads: {}",
        alice.now(),
        String::from_utf8_lossy(&latest)
    );
}
