//! Disaster recovery with the cloud-of-clouds backend: files stay available
//! and intact even when one provider goes down or starts corrupting data
//! (the paper's `f = 1` Byzantine fault tolerance).
//!
//! Run with: `cargo run --example disaster_recovery`

use std::sync::Arc;

use scfs_repro::cloud_store::providers::ProviderSet;
use scfs_repro::cloud_store::sim_cloud::SimulatedCloud;
use scfs_repro::cloud_store::store::ObjectStore;
use scfs_repro::coord::replication::{ReplicatedCoordinator, ReplicationConfig};
use scfs_repro::coord::service::CoordinationService;
use scfs_repro::depsky::config::DepSkyConfig;
use scfs_repro::depsky::register::DepSkyClient;
use scfs_repro::scfs::agent::ScfsAgent;
use scfs_repro::scfs::backend::CloudOfCloudsStorage;
use scfs_repro::scfs::config::{Mode, ScfsConfig};
use scfs_repro::scfs::fs::FileSystem;
use scfs_repro::sim_core::fault::FaultPlan;
use scfs_repro::sim_core::time::SimInstant;

fn main() {
    // Keep handles to the concrete simulated clouds so we can break them.
    let sims: Vec<Arc<SimulatedCloud>> = ProviderSet::coc_storage_backend()
        .into_iter()
        .enumerate()
        .map(|(i, p)| Arc::new(SimulatedCloud::new(p, i as u64)))
        .collect();
    let clouds: Vec<Arc<dyn ObjectStore>> = sims
        .iter()
        .map(|c| c.clone() as Arc<dyn ObjectStore>)
        .collect();
    let depsky = DepSkyClient::new(clouds, DepSkyConfig::scfs_default(), 11).expect("depsky");
    let storage = Arc::new(CloudOfCloudsStorage::new(depsky));
    let coordinator: Arc<dyn CoordinationService> = Arc::new(
        ReplicatedCoordinator::new(ReplicationConfig::coc_byzantine(), 11)
            .expect("coc_byzantine is a consistent configuration"),
    );

    let mut fs = ScfsAgent::mount(
        "ops-team".into(),
        ScfsConfig::paper_default(Mode::Blocking),
        storage.clone(),
        Some(coordinator.clone()),
        11,
    )
    .expect("mount");

    // Back up the critical files.
    let backup = vec![0x42u8; 512 * 1024];
    fs.write_file("/backups/customer-db.dump", &backup)
        .expect("backup written");
    println!("[{}] backup stored across {} clouds", fs.now(), sims.len());

    // Disaster 1: one provider has a prolonged outage.
    sims[0].set_fault_plan(
        FaultPlan::outage(SimInstant::EPOCH, SimInstant::from_secs(1 << 30)),
        1,
    );
    println!("-> {} is now unreachable", sims[0].profile().name);

    // Disaster 2: another provider silently corrupts everything it serves.
    sims[1].set_fault_plan(FaultPlan::always_byzantine(), 2);
    println!(
        "-> {} now corrupts the data it returns",
        sims[1].profile().name
    );

    // Wait: the paper tolerates f = 1 faulty cloud; two simultaneous faults
    // exceed the threshold, so heal the Byzantine one to stay within spec.
    sims[1].set_fault_plan(FaultPlan::none(), 2);
    println!(
        "-> {} recovered (within the f = 1 fault budget)",
        sims[1].profile().name
    );

    // Recovery drill: a brand-new agent (fresh machine, empty caches)
    // restores the backup; it must read through the remaining healthy quorum.
    let mut recovery = ScfsAgent::mount(
        "ops-team".into(),
        ScfsConfig::paper_default(Mode::Blocking),
        storage,
        Some(coordinator),
        12,
    )
    .expect("mount recovery agent");
    recovery.sleep(fs.now().duration_since(recovery.now()));
    let restored = recovery
        .read_file("/backups/customer-db.dump")
        .expect("restore");
    assert_eq!(restored, backup);
    println!(
        "[{}] restored {} bytes on a fresh machine despite the provider outage",
        recovery.now(),
        restored.len()
    );
    println!("recovery agent stats: {:?}", recovery.stats());
}
