//! A personal file-synchronization setup (the paper's "secure personal file
//! system" use case): non-sharing mode, no coordination service, private
//! name spaces only — like S3QL/Dropbox, but optionally cloud-of-clouds
//! backed and with versioning + garbage collection.
//!
//! Run with: `cargo run --example personal_backup`

use scfs_repro::scfs::config::{Mode, ScfsConfig};
use scfs_repro::scfs::fs::FileSystem;
use scfs_repro::scfs::types::OpenFlags;
use scfs_repro::sim_core::units::Bytes;
use scfs_repro::workloads::setup::{build_scfs, Backend};

fn main() {
    // Non-sharing mode on the cloud-of-clouds backend; aggressive GC so the
    // version history stays small.
    let mut config = ScfsConfig::paper_default(Mode::NonSharing);
    config.gc.written_bytes_threshold = Bytes::mib(1);
    config.gc.versions_to_keep = 2;
    let mut fs = build_scfs(Backend::CloudOfClouds, Mode::NonSharing, config, 99);

    // A desktop session: the user keeps saving the same documents.
    for revision in 1..=8u8 {
        for doc in ["thesis.tex", "photos.db", "todo.md"] {
            let content = vec![revision; 64 * 1024];
            fs.write_file(&format!("/home/{doc}"), &content)
                .expect("save");
        }
    }
    println!("virtual time after 24 saves: {}", fs.now());
    println!(
        "background uploads drain at:   {}",
        fs.background_drain_instant()
    );
    // Each pending save is a first-class completion token; the thesis is the
    // one document worth promoting to cloud durability before shutdown.
    if let Some(token) = fs.upload_token("/home/thesis.tex") {
        println!(
            "thesis upload in flight:       started {}, lands {}",
            token.started_at(),
            token.ready_at()
        );
    }
    let h = fs
        .open("/home/thesis.tex", OpenFlags::read_only())
        .expect("open thesis");
    let level = fs.sync(h).expect("promote thesis to cloud durability");
    fs.close(h).expect("close thesis");
    println!(
        "thesis synced to level {} ({}) at {}",
        level.level(),
        level.tolerates(),
        fs.now()
    );

    let stats = fs.stats();
    println!(
        "uploads: {}, GC runs: {}, versions reclaimed: {}",
        stats.cloud_uploads, stats.gc_runs, stats.gc_reclaimed_versions
    );
    println!(
        "private files tracked in the PNS (no coordination service at all): {}",
        fs.metadata_service().pns().map(|p| p.len()).unwrap_or(0)
    );

    // Everything is still there.
    for doc in ["thesis.tex", "photos.db", "todo.md"] {
        let data = fs.read_file(&format!("/home/{doc}")).expect("read back");
        assert_eq!(data.len(), 64 * 1024);
    }
    println!("all documents verified after the session");
}
